#ifndef TENET_SERVING_BATCH_SERVICE_H_
#define TENET_SERVING_BATCH_SERVICE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/linker.h"
#include "common/bounded_queue.h"
#include "common/circuit_breaker.h"
#include "common/deadline.h"
#include "common/dependency_health.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/link_context.h"
#include "embedding/similarity_cache.h"
#include "obs/metrics.h"
#include "serving/admission_controller.h"

namespace tenet {
namespace serving {

// The dependencies guarded by per-dependency circuit breakers — the same
// names as the TENET_FAULT_POINT / TENET_OBSERVE_DEPENDENCY annotations at
// the corresponding call sites.
inline constexpr const char* kKbAliasDependency = "kb/alias_lookup";
inline constexpr const char* kEmbeddingDependency = "embedding/fetch";
inline constexpr const char* kCoverSolveDependency = "core/cover_solve";

struct ServingOptions {
  /// Worker threads linking documents.
  int num_threads = 4;
  /// Requests buffered between admission and the workers.
  size_t queue_capacity = 64;
  /// kReject sheds on a full queue (kResourceExhausted back to the
  /// caller); kBlock applies backpressure instead — what the offline
  /// evaluation uses, where shedding would change the scores.
  QueueOverflowPolicy overflow = QueueOverflowPolicy::kReject;
  /// Front-door policy; max_pending 0 derives queue_capacity+num_threads.
  AdmissionOptions admission;
  /// Deadline attached to requests submitted without one.  Infinite keeps
  /// the linker's own per-document policy in charge.
  double default_deadline_ms = std::numeric_limits<double>::infinity();
  /// Per-dependency breaker tuning (shared by all three breakers).
  CircuitBreakerOptions breaker;
  /// Request-level retries on retryable failures (kInternal,
  /// kBoundTooSmall).  Only max_retries is consulted; every retry must
  /// also be covered by the shared retry budget below, so retries stop
  /// fleet-wide during an outage instead of amplifying it.
  RetryPolicy retry{/*max_retries=*/1, /*multiplier=*/1.0,
                    /*max_value=*/std::numeric_limits<double>::infinity()};
  /// The shared retry budget (see RetryBudget).
  RetryBudget::Options retry_budget;
  /// Byte budget of the service-owned cross-request similarity cache.
  /// Recurring concept pairs across a serving workload hit the cache
  /// instead of recomputing the pairwise kernel; cached values are
  /// bit-identical to computed ones, so warming it never changes an
  /// answer.  0 disables the service-owned cache; a request can still
  /// bring its own via LinkContext::similarity_cache, which always wins.
  size_t similarity_cache_bytes = 0;
  /// Registry backing the service's counters, gauges and the per-request
  /// latency histogram, and — unless they carry their own — the nested
  /// admission/breaker/retry-budget metrics.  Null publishes to the
  /// process-wide default registry; tests inject a fresh registry per
  /// service so ledger assertions see an isolated window.
  obs::MetricsRegistry* metrics = nullptr;
};

// One served request's outcome: the linking result (or the error / shed
// status) plus the worker-side processing latency.  Shed requests never
// reached a worker; their latency is 0 and `shed` is true.
struct ServedResult {
  Result<core::LinkingResult> result = Status::Internal("not served");
  double latency_ms = 0.0;
  bool shed = false;
};

// A point-in-time snapshot of the service's accounting, read from the
// backing MetricsRegistry.  Every submitted request resolves to exactly
// one of shed / full / degraded / failed, so after a drain:
// submitted == shed + full + degraded + failed and
// completed == full + degraded + failed.
struct ServiceStats {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t shed = 0;       // refused at admission or on a full queue
  int64_t completed = 0;  // reached a worker and resolved
  int64_t full = 0;       // full-pipeline answers
  int64_t degraded = 0;   // degraded-mode answers (any rung)
  int64_t breaker_degraded = 0;  // of `degraded`: routed by an open breaker
  int64_t failed = 0;     // non-OK results
  int64_t retries = 0;    // request-level retry attempts
  BreakerState kb_alias_breaker = BreakerState::kClosed;
  BreakerState embedding_breaker = BreakerState::kClosed;
  BreakerState cover_breaker = BreakerState::kClosed;
  // Worker-side latency quantiles over every completed request, from the
  // tenet_request_latency_ms histogram (degraded answers included — a
  // degraded answer is still a served request).
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
};

// The concurrent batch serving layer over one immutable linking substrate.
//
// A BatchLinkingService owns a fixed worker pool and wraps a Linker (in
// production, TenetLinker over one shared KB / embedding / gazetteer
// snapshot — all immutable after construction, so workers share them
// without locks).  Each request flows
//
//   Submit -> AdmissionController (shed?) -> BoundedQueue (shed/block?)
//          -> worker: breaker routing -> linker (+ budgeted retries)
//          -> callback
//
// Per-dependency circuit breakers watch the KB alias, embedding-fetch and
// cover-solver outcome streams (via the process-wide dependency observer
// installed for the service's lifetime).  A request that meets an open
// breaker is not failed: it is routed straight to the prior-only rung of
// the pipeline's degradation ladder by linking under an already-expired
// deadline — load on the sick dependency drops, answers keep flowing.
//
// The service must outlive every callback; the destructor drains queued
// requests and joins the workers.
class BatchLinkingService {
 public:
  using Callback = std::function<void(ServedResult)>;

  /// `linker` must outlive the service.
  explicit BatchLinkingService(const baselines::Linker* linker,
                               ServingOptions options = {});
  ~BatchLinkingService();

  BatchLinkingService(const BatchLinkingService&) = delete;
  BatchLinkingService& operator=(const BatchLinkingService&) = delete;

  /// Asynchronous entry point: admission, then enqueue.  Per-request knobs
  /// (deadline, trace) travel in the LinkContext; an unset context deadline
  /// is resolved against ServingOptions::default_deadline_ms at the door.
  /// On OK, `done` is invoked exactly once from a worker thread.  On
  /// kResourceExhausted the request was shed and `done` is never invoked.
  Status Submit(std::string text, Callback done);
  Status Submit(std::string text, core::LinkContext context, Callback done);

  // Deprecated shim of the pre-LinkContext API.
  [[deprecated("pass a core::LinkContext instead of a bare Deadline")]]
  Status Submit(std::string text, Deadline deadline, Callback done) {
    return Submit(std::move(text), core::LinkContext::WithDeadline(deadline),
                  std::move(done));
  }

  /// Synchronous batch entry point with deterministic merging: results[i]
  /// always corresponds to texts[i], whatever order the workers finished
  /// in.  Shed requests (possible under kReject overflow) surface as
  /// entries with shed == true and a kResourceExhausted status.
  std::vector<ServedResult> LinkBatch(const std::vector<std::string>& texts);

  /// Accounting snapshot, read from the backing registry.
  ServiceStats Stats() const;

  [[deprecated("use Stats(); the snapshot is registry-backed now")]]
  ServiceStats stats() const { return Stats(); }

  /// The registry this service publishes to (the injected one, or the
  /// process-wide default).
  obs::MetricsRegistry* metrics() const { return registry_; }

  /// The service-owned cross-request similarity cache; null when
  /// ServingOptions::similarity_cache_bytes is 0.
  embedding::SimilarityCache* similarity_cache() const {
    return similarity_cache_.get();
  }

  /// Breaker watching `dependency` (one of the k*Dependency constants);
  /// null for unknown names.
  const CircuitBreaker* breaker(const char* dependency) const;

  const ServingOptions& options() const { return options_; }

 private:
  struct Request {
    std::string text;
    /// Resolved at the door: never "unset", so workers need no policy.
    Deadline deadline;
    obs::Trace* trace = nullptr;
    /// Resolved at the door: the request's own cache, else the
    /// service-owned one, else null.
    embedding::SimilarityCache* similarity_cache = nullptr;
    Callback done;
  };

  // The service's registry instruments, resolved once at construction.
  struct Instruments {
    obs::Counter* submitted;
    obs::Counter* shed;
    obs::Counter* rejected_queue_full;
    obs::Counter* completed_full;
    obs::Counter* completed_degraded;
    obs::Counter* completed_failed;
    obs::Counter* breaker_degraded;
    obs::Counter* retries;
    obs::Gauge* queue_depth;
    obs::Gauge* inflight;
    obs::Histogram* request_latency;
  };

  // Fans the dependency outcome stream out to the service's breakers.
  class BreakerObserver : public DependencyObserver {
   public:
    explicit BreakerObserver(BatchLinkingService* service)
        : service_(service) {}
    void ObserveDependency(const char* dependency, bool ok) override;

   private:
    BatchLinkingService* service_;
  };

  static Instruments MakeInstruments(obs::MetricsRegistry* registry);

  Deadline DefaultDeadline() const;
  void Process(Request request);
  Result<core::LinkingResult> LinkOnce(const Request& request) const;
  CircuitBreaker* MutableBreaker(const char* dependency);

  const baselines::Linker* linker_;
  const ServingOptions options_;
  obs::MetricsRegistry* registry_;
  Instruments m_;

  CircuitBreaker kb_alias_breaker_;
  CircuitBreaker embedding_breaker_;
  CircuitBreaker cover_breaker_;
  RetryBudget retry_budget_;
  AdmissionController admission_;
  std::unique_ptr<embedding::SimilarityCache> similarity_cache_;

  // Declaration order is the destruction contract: the pool (last member)
  // is destroyed first, joining every worker before the observer scope
  // uninstalls and the breakers die.
  BreakerObserver observer_;
  ScopedDependencyObserver observer_scope_;
  ThreadPool pool_;
};

}  // namespace serving
}  // namespace tenet

#endif  // TENET_SERVING_BATCH_SERVICE_H_
