#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace tenet {
namespace obs {
namespace {

// Values are rendered with enough digits to round-trip a double; integral
// values drop the fraction so counters read naturally.
std::string FormatValue(double value) {
  char buffer[64];
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::abs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%" PRId64,
                  static_cast<int64_t>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  return std::string(buffer);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

const char* TypeName(int type) {
  switch (type) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

}  // namespace

int ThisThreadShard() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return shard;
}

std::string LabelPair(std::string_view key, std::string_view value) {
  std::string out(key);
  out += "=\"";
  for (char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

// ---------------------------------------------------------------- Counter

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// -------------------------------------------------------------- Histogram

double Histogram::BucketUpperBoundMs(int i) {
  return kFirstBucketMs * static_cast<double>(int64_t{1} << i);
}

int Histogram::BucketIndex(double value_ms) {
  if (!(value_ms > kFirstBucketMs)) return 0;  // also catches NaN
  // Index of the first bound >= value: bound_i = kFirstBucketMs * 2^i.
  int exponent = static_cast<int>(
      std::ceil(std::log2(value_ms / kFirstBucketMs) - 1e-9));
  if (exponent >= kNumFiniteBuckets) return kNumFiniteBuckets;
  // log2 rounding can land one bucket low on exact powers; nudge up.
  if (value_ms > BucketUpperBoundMs(exponent)) ++exponent;
  return std::min(exponent, kNumFiniteBuckets);
}

void Histogram::Observe(double value_ms) {
  Shard& shard = shards_[ThisThreadShard()];
  shard.buckets[BucketIndex(value_ms)].fetch_add(1,
                                                 std::memory_order_relaxed);
  shard.sum.fetch_add(value_ms, std::memory_order_relaxed);
}

std::array<int64_t, Histogram::kNumFiniteBuckets + 1>
Histogram::BucketCounts() const {
  std::array<int64_t, kNumFiniteBuckets + 1> totals{};
  for (const Shard& shard : shards_) {
    for (int i = 0; i <= kNumFiniteBuckets; ++i) {
      totals[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

int64_t Histogram::Count() const {
  std::array<int64_t, kNumFiniteBuckets + 1> totals = BucketCounts();
  int64_t count = 0;
  for (int64_t c : totals) count += c;
  return count;
}

double Histogram::Sum() const {
  double sum = 0.0;
  for (const Shard& shard : shards_) {
    sum += shard.sum.load(std::memory_order_relaxed);
  }
  return sum;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::array<int64_t, kNumFiniteBuckets + 1> totals = BucketCounts();
  int64_t count = 0;
  for (int64_t c : totals) count += c;
  if (count == 0) return 0.0;
  // Rank of the q-th observation (1-based), then walk the buckets.
  int64_t rank = static_cast<int64_t>(std::ceil(q * count));
  if (rank < 1) rank = 1;
  int64_t seen = 0;
  for (int i = 0; i <= kNumFiniteBuckets; ++i) {
    if (totals[i] == 0) continue;
    if (seen + totals[i] < rank) {
      seen += totals[i];
      continue;
    }
    double lower = i == 0 ? 0.0 : BucketUpperBoundMs(i - 1);
    if (i == kNumFiniteBuckets) return lower;  // overflow: report the floor
    double upper = BucketUpperBoundMs(i);
    double fraction =
        static_cast<double>(rank - seen) / static_cast<double>(totals[i]);
    return lower + (upper - lower) * fraction;
  }
  return BucketUpperBoundMs(kNumFiniteBuckets - 1);
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

// -------------------------------------------------- DependencyOpCounters

DependencyOpCounters::DependencyOpCounters(std::string_view dependency,
                                           MetricsRegistry* registry) {
  if (registry == nullptr) registry = MetricsRegistry::Default();
  constexpr const char* kHelp =
      "Dependency operations at instrumented call sites, by outcome "
      "(error = the operation failed, e.g. an injected fault fired).";
  const std::string dep = LabelPair("dependency", dependency);
  ok_ = registry->GetCounter("tenet_dependency_operations_total", kHelp,
                             dep + "," + LabelPair("outcome", "ok"));
  error_ = registry->GetCounter("tenet_dependency_operations_total", kHelp,
                                dep + "," + LabelPair("outcome", "error"));
}

// -------------------------------------------------------- MetricsRegistry

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

MetricsRegistry::Instrument* MetricsRegistry::GetLocked(
    std::string_view family, std::string_view help, std::string_view labels,
    Type type) {
  auto [family_it, family_inserted] =
      families_.try_emplace(std::string(family));
  Family& entry = family_it->second;
  if (family_inserted) {
    entry.help = std::string(help);
    entry.type = type;
  }
  assert(entry.type == type && "metric family re-registered as another type");
  auto [it, inserted] = entry.instruments.try_emplace(std::string(labels));
  if (inserted) {
    it->second.type = type;
    switch (type) {
      case Type::kCounter:
        it->second.counter = std::make_unique<Counter>();
        break;
      case Type::kGauge:
        it->second.gauge = std::make_unique<Gauge>();
        break;
      case Type::kHistogram:
        it->second.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view family,
                                     std::string_view help,
                                     std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetLocked(family, help, labels, Type::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view family,
                                 std::string_view help,
                                 std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetLocked(family, help, labels, Type::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view family,
                                         std::string_view help,
                                         std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetLocked(family, help, labels, Type::kHistogram)->histogram.get();
}

std::string MetricsRegistry::RenderPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  auto sample = [&out](const std::string& name, const std::string& labels,
                       const std::string& extra_label, double value) {
    out += name;
    if (!labels.empty() || !extra_label.empty()) {
      out += '{';
      out += labels;
      if (!labels.empty() && !extra_label.empty()) out += ',';
      out += extra_label;
      out += '}';
    }
    out += ' ';
    out += FormatValue(value);
    out += '\n';
  };
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " " +
           TypeName(static_cast<int>(family.type)) + "\n";
    for (const auto& [labels, instrument] : family.instruments) {
      switch (family.type) {
        case Type::kCounter:
          sample(name, labels, "",
                 static_cast<double>(instrument.counter->Value()));
          break;
        case Type::kGauge:
          sample(name, labels, "", instrument.gauge->Value());
          break;
        case Type::kHistogram: {
          const Histogram& h = *instrument.histogram;
          auto buckets = h.BucketCounts();
          int64_t cumulative = 0;
          for (int i = 0; i < Histogram::kNumFiniteBuckets; ++i) {
            cumulative += buckets[i];
            sample(name + "_bucket", labels,
                   LabelPair("le",
                             FormatValue(Histogram::BucketUpperBoundMs(i))),
                   static_cast<double>(cumulative));
          }
          cumulative += buckets[Histogram::kNumFiniteBuckets];
          sample(name + "_bucket", labels, LabelPair("le", "+Inf"),
                 static_cast<double>(cumulative));
          sample(name + "_sum", labels, "", h.Sum());
          sample(name + "_count", labels, "",
                 static_cast<double>(cumulative));
          break;
        }
      }
    }
  }
  return out;
}

std::vector<MetricPoint> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricPoint> points;
  for (const auto& [name, family] : families_) {
    for (const auto& [labels, instrument] : family.instruments) {
      switch (family.type) {
        case Type::kCounter:
          points.push_back(
              {name, labels,
               static_cast<double>(instrument.counter->Value())});
          break;
        case Type::kGauge:
          points.push_back({name, labels, instrument.gauge->Value()});
          break;
        case Type::kHistogram: {
          const Histogram& h = *instrument.histogram;
          points.push_back(
              {name + "_count", labels, static_cast<double>(h.Count())});
          points.push_back({name + "_sum", labels, h.Sum()});
          points.push_back({name + "_p50", labels, h.P50()});
          points.push_back({name + "_p95", labels, h.P95()});
          points.push_back({name + "_p99", labels, h.P99()});
          break;
        }
      }
    }
  }
  return points;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "[";
  bool first = true;
  for (const auto& [name, family] : families_) {
    for (const auto& [labels, instrument] : family.instruments) {
      if (!first) out += ",";
      first = false;
      out += "\n  {\"name\":\"" + JsonEscape(name) + "\",\"labels\":\"" +
             JsonEscape(labels) + "\",";
      switch (family.type) {
        case Type::kCounter:
          out += "\"type\":\"counter\",\"value\":" +
                 FormatValue(
                     static_cast<double>(instrument.counter->Value()));
          break;
        case Type::kGauge:
          out += "\"type\":\"gauge\",\"value\":" +
                 FormatValue(instrument.gauge->Value());
          break;
        case Type::kHistogram: {
          const Histogram& h = *instrument.histogram;
          out += "\"type\":\"histogram\",\"count\":" +
                 FormatValue(static_cast<double>(h.Count())) +
                 ",\"sum\":" + FormatValue(h.Sum()) +
                 ",\"p50\":" + FormatValue(h.P50()) +
                 ",\"p95\":" + FormatValue(h.P95()) +
                 ",\"p99\":" + FormatValue(h.P99());
          break;
        }
      }
      out += "}";
    }
  }
  out += "\n]\n";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : families_) {
    for (auto& [labels, instrument] : family.instruments) {
      switch (family.type) {
        case Type::kCounter:
          instrument.counter->Reset();
          break;
        case Type::kGauge:
          instrument.gauge->Reset();
          break;
        case Type::kHistogram:
          instrument.histogram->Reset();
          break;
      }
    }
  }
}

}  // namespace obs
}  // namespace tenet
