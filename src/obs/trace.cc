#include "obs/trace.h"

#include <cassert>
#include <cstdio>

namespace tenet {
namespace obs {

int Trace::StartSpan(std::string name, int parent) {
  assert(parent >= -1 && parent < static_cast<int>(spans_.size()));
  TraceSpan span;
  span.name = std::move(name);
  span.parent = parent;
  span.start_ms = ElapsedMs();
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

void Trace::EndSpan(int span) {
  EndSpan(span, ElapsedMs() - spans_[span].start_ms);
}

void Trace::EndSpan(int span, double duration_ms) {
  assert(span >= 0 && span < static_cast<int>(spans_.size()));
  spans_[span].duration_ms = duration_ms < 0.0 ? 0.0 : duration_ms;
}

void Trace::Annotate(std::string key, std::string value) {
  annotations_.emplace_back(std::move(key), std::move(value));
}

int Trace::FindSpan(std::string_view name) const {
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Trace::CountSpans(std::string_view name) const {
  int count = 0;
  for (const TraceSpan& span : spans_) {
    if (span.name == name) ++count;
  }
  return count;
}

double Trace::ElapsedMs() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - epoch_)
      .count();
}

std::string Trace::Render() const {
  // Depth via parent chains; spans are append-ordered, so a parent always
  // precedes its children and one pass suffices.
  std::vector<int> depth(spans_.size(), 0);
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent >= 0) depth[i] = depth[spans_[i].parent] + 1;
  }
  std::string out;
  char line[160];
  for (size_t i = 0; i < spans_.size(); ++i) {
    std::string indented(static_cast<size_t>(depth[i]) * 2, ' ');
    indented += spans_[i].name;
    if (spans_[i].open()) {
      std::snprintf(line, sizeof(line), "%-28s (open)\n", indented.c_str());
    } else {
      std::snprintf(line, sizeof(line), "%-28s %8.3f ms\n", indented.c_str(),
                    spans_[i].duration_ms);
    }
    out += line;
  }
  for (const auto& [key, value] : annotations_) {
    out += "  @" + key + " = " + value + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace tenet
