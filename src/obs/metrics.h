#ifndef TENET_OBS_METRICS_H_
#define TENET_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tenet {
namespace obs {

// Lock-cheap runtime metrics for the serving stack, in the Prometheus data
// model: counters, gauges and latency histograms, owned by a
// MetricsRegistry and rendered as Prometheus text or JSON.
//
// Hot-path cost model: an increment/observation is one or two relaxed
// atomic adds on a cache-line-padded per-thread shard — no mutex, no
// contention between ThreadPool workers hammering the same metric.  Reads
// (Value(), rendering) sum the shards; they are O(shards) and intended for
// scrape/snapshot frequency, not per-request frequency.
//
// Identity: a metric is (family name, label string).  The label string is
// pre-rendered Prometheus label syntax without braces, e.g.
// `stage="extract"` — see LabelPair().  Cardinality rules (DESIGN.md §9):
// label values must come from small closed sets (stage names, dependency
// names, degradation rungs), never from request data.

/// Number of independent shards per metric.  A power of two; sized for the
/// serving layer's worker counts (more threads than shards just share).
inline constexpr int kMetricShards = 16;

/// The shard owned by the calling thread (assigned round-robin on first
/// use, so up to kMetricShards threads never collide).
int ThisThreadShard();

/// Renders one Prometheus label pair, `key="value"`, escaping `\`, `"` and
/// newlines in the value.  Join multiple pairs with ",".
std::string LabelPair(std::string_view key, std::string_view value);

// A monotonically increasing count (events: requests, rejects, retries,
// transitions).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t n = 1) {
    shards_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all shards.
  int64_t Value() const;

  /// Back to zero (bench/test convenience; Prometheus counters never reset
  /// in production).
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

// A value that goes up and down (queue depth, in-flight requests, breaker
// state, retry-budget tokens).  Set/Add race benignly under concurrent
// writers — a gauge reports "a recent value", not a ledger.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// A latency histogram over fixed exponential buckets: bucket i counts
// observations <= kFirstBucketMs * 2^i, doubling from 1 microsecond up to
// ~2 minutes, plus an overflow bucket.  Fixed bounds keep Observe() a
// branch-light index computation and make every histogram of a family
// mergeable.
class Histogram {
 public:
  /// Upper bound of the first bucket, in milliseconds (1 microsecond).
  static constexpr double kFirstBucketMs = 0.001;
  /// Finite buckets; the last finite bound is kFirstBucketMs * 2^26 ≈ 67s.
  static constexpr int kNumFiniteBuckets = 27;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one observation (a latency in milliseconds).  Two relaxed
  /// atomic adds on this thread's shard.
  void Observe(double value_ms);

  /// Upper bound of finite bucket `i` in milliseconds.
  static double BucketUpperBoundMs(int i);

  /// Index of the finite bucket covering `value_ms`, or kNumFiniteBuckets
  /// for the overflow bucket.
  static int BucketIndex(double value_ms);

  int64_t Count() const;
  double Sum() const;

  /// Per-bucket (non-cumulative) counts, overflow last; merged over shards.
  std::array<int64_t, kNumFiniteBuckets + 1> BucketCounts() const;

  /// Quantile estimate in [0, 1] by linear interpolation inside the
  /// covering bucket (the overflow bucket reports its lower bound).
  /// Returns 0 when empty.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  void Reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, kNumFiniteBuckets + 1> buckets{};
    std::atomic<double> sum{0.0};
  };
  std::array<Shard, kMetricShards> shards_;
};

class MetricsRegistry;

// The tenet_dependency_operations_total{dependency=,outcome="ok"|"error"}
// counter pair of one instrumented dependency call site (KB alias lookups,
// embedding fetches, cover solves).  Construct once — a function-local
// static at a call site without an injectable registry, or a member of the
// instrumented component (EmbeddingStore) so tests can re-point it at a
// per-test registry; Record() is then one shard increment.
class DependencyOpCounters {
 public:
  /// Resolves the counter pair against `registry` (null: the process-wide
  /// default registry).
  explicit DependencyOpCounters(std::string_view dependency,
                                MetricsRegistry* registry = nullptr);

  void Record(bool ok) const { (ok ? ok_ : error_)->Increment(); }

 private:
  Counter* ok_;
  Counter* error_;
};

// One rendered sample of a snapshot: counters and gauges yield one point
// each; a histogram expands into `<family>_count`, `<family>_sum`,
// `<family>_p50`, `<family>_p95` and `<family>_p99`.
struct MetricPoint {
  std::string name;    // family name, possibly with an expansion suffix
  std::string labels;  // pre-rendered label pairs, "" when unlabeled
  double value = 0.0;
};

// Owns metrics by (family, labels) and renders them.  Get* calls are
// find-or-create under a mutex and return stable pointers — callers cache
// the pointer once (typically in a function-local static) and take the
// lock never again on the hot path.  A family's type and help text are
// fixed by its first Get*; a type mismatch on the same family is a
// programming error and check-fails.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide default registry.  Library instrumentation points
  /// (pipeline stages, dependency call sites) publish here; components with
  /// injectable registries (the serving layer) default here too, so the
  /// CLI/eval/bench read one source of truth.
  static MetricsRegistry* Default();

  Counter* GetCounter(std::string_view family, std::string_view help,
                      std::string_view labels = "");
  Gauge* GetGauge(std::string_view family, std::string_view help,
                  std::string_view labels = "");
  Histogram* GetHistogram(std::string_view family, std::string_view help,
                          std::string_view labels = "");

  /// Prometheus text exposition format, one `# HELP` / `# TYPE` block per
  /// family (sorted by name), histograms expanded into cumulative
  /// `_bucket{le=...}` series plus `_sum` and `_count`.
  std::string RenderPrometheusText() const;

  /// JSON array of sample objects: {"name","labels","value"} for counters
  /// and gauges, {"name","labels","count","sum","p50","p95","p99"} for
  /// histograms.
  std::string RenderJson() const;

  /// Flat numeric snapshot (same expansion as RenderJson), for embedding
  /// in result structs.
  std::vector<MetricPoint> Snapshot() const;

  /// Zeroes every registered metric in place.  Pointers handed out by Get*
  /// stay valid — this resets values, it does not unregister.  Meant for
  /// benches and tests that want per-run windows over the default registry.
  void Reset();

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Instrument {
    Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string help;
    Type type;
    // labels -> instrument; std::map for deterministic render order.
    std::map<std::string, Instrument> instruments;
  };

  Instrument* GetLocked(std::string_view family, std::string_view help,
                        std::string_view labels, Type type);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace obs
}  // namespace tenet

#endif  // TENET_OBS_METRICS_H_
