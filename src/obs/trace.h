#ifndef TENET_OBS_TRACE_H_
#define TENET_OBS_TRACE_H_

#include <chrono>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tenet {
namespace obs {

// One timed operation inside a request: a pipeline stage, a cover-solve
// retry attempt, a degradation rung.  Spans form a tree via parent indices
// into the owning Trace.
struct TraceSpan {
  std::string name;
  /// Index of the parent span in Trace::spans(), -1 for a root span.
  int parent = -1;
  /// Start offset from the trace epoch, in milliseconds.
  double start_ms = 0.0;
  /// Filled by EndSpan; negative while the span is still open.
  double duration_ms = -1.0;

  bool open() const { return duration_ms < 0.0; }
};

// The per-request trace: an append-only list of spans plus free-form
// key/value annotations (degradation reasons, chosen bounds).  A Trace
// belongs to exactly one request and is recorded from that request's
// thread — it is NOT thread-safe by design; that is what keeps recording
// allocation-light and lock-free.  Pass it down a request via
// LinkContext::trace; a null trace pointer disables recording at zero cost.
class Trace {
 public:
  Trace() : epoch_(Clock::now()) {}

  /// Opens a span and returns its id (index into spans()).
  int StartSpan(std::string name, int parent = -1);

  /// Closes `span`, measuring the duration from its start.
  void EndSpan(int span);

  /// Closes `span` with an externally measured duration — used by callers
  /// that already timed the operation (the pipeline's stage timers), so the
  /// span, the timings struct and the latency histogram all carry the
  /// exact same number.
  void EndSpan(int span, double duration_ms);

  void Annotate(std::string key, std::string value);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<std::pair<std::string, std::string>>& annotations()
      const {
    return annotations_;
  }

  /// First span named `name`, or -1.
  int FindSpan(std::string_view name) const;

  /// Number of spans named `name`.
  int CountSpans(std::string_view name) const;

  /// Milliseconds elapsed since the trace was constructed.
  double ElapsedMs() const;

  /// Human-readable tree, one span per line, children indented under their
  /// parent, annotations at the end:
  ///
  ///   extract                 0.12 ms
  ///   cover                   1.40 ms
  ///     cover_retry           0.70 ms
  std::string Render() const;

 private:
  using Clock = std::chrono::steady_clock;

  Clock::time_point epoch_;
  std::vector<TraceSpan> spans_;
  std::vector<std::pair<std::string, std::string>> annotations_;
};

// RAII span: opens on construction, closes on destruction unless already
// closed via Stop().  Null `trace` makes every operation a no-op, so call
// sites do not branch on whether the request carries a trace.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, std::string name, int parent = -1)
      : trace_(trace),
        id_(trace ? trace->StartSpan(std::move(name), parent) : -1) {}

  ~ScopedSpan() {
    if (trace_ != nullptr && trace_->spans()[id_].open()) {
      trace_->EndSpan(id_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Span id for parenting children; -1 when untraced.
  int id() const { return id_; }

  /// Closes the span now with an externally measured duration.
  void Stop(double duration_ms) {
    if (trace_ != nullptr) trace_->EndSpan(id_, duration_ms);
  }

 private:
  Trace* trace_;
  int id_;
};

}  // namespace obs
}  // namespace tenet

#endif  // TENET_OBS_TRACE_H_
