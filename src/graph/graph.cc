#include "graph/graph.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/union_find.h"

namespace tenet {
namespace graph {

WeightedGraph::WeightedGraph(int num_nodes)
    : num_nodes_(num_nodes), incident_(num_nodes) {
  TENET_CHECK_GE(num_nodes, 0);
}

uint64_t WeightedGraph::EdgeKey(int u, int v) const {
  uint64_t lo = static_cast<uint64_t>(std::min(u, v));
  uint64_t hi = static_cast<uint64_t>(std::max(u, v));
  return (hi << 32) | lo;
}

int WeightedGraph::AddEdge(int u, int v, double weight) {
  TENET_CHECK(u >= 0 && u < num_nodes_) << "bad node " << u;
  TENET_CHECK(v >= 0 && v < num_nodes_) << "bad node " << v;
  if (u == v) return -1;
  uint64_t key = EdgeKey(u, v);
  auto it = edge_index_by_key_.find(key);
  if (it != edge_index_by_key_.end()) {
    Edge& existing = edges_[it->second];
    existing.weight = std::min(existing.weight, weight);
    return it->second;
  }
  int index = static_cast<int>(edges_.size());
  edges_.push_back(Edge{u, v, weight});
  incident_[u].push_back(index);
  incident_[v].push_back(index);
  edge_index_by_key_.emplace(key, index);
  return index;
}

double WeightedGraph::EdgeWeight(int u, int v, double missing) const {
  if (u == v || u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_) {
    return missing;
  }
  uint64_t lo = static_cast<uint64_t>(std::min(u, v));
  uint64_t hi = static_cast<uint64_t>(std::max(u, v));
  auto it = edge_index_by_key_.find((hi << 32) | lo);
  return it == edge_index_by_key_.end() ? missing : edges_[it->second].weight;
}

bool WeightedGraph::HasEdge(int u, int v) const {
  if (u == v || u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_) {
    return false;
  }
  uint64_t lo = static_cast<uint64_t>(std::min(u, v));
  uint64_t hi = static_cast<uint64_t>(std::max(u, v));
  return edge_index_by_key_.count((hi << 32) | lo) > 0;
}

const std::vector<int>& WeightedGraph::IncidentEdges(int node) const {
  TENET_CHECK(node >= 0 && node < num_nodes_);
  return incident_[node];
}

int WeightedGraph::OtherEndpoint(int edge_index, int node) const {
  const Edge& e = edges_[edge_index];
  TENET_DCHECK(e.u == node || e.v == node);
  return e.u == node ? e.v : e.u;
}

WeightedGraph WeightedGraph::PrunedCopy(double bound) const {
  WeightedGraph pruned(num_nodes_);
  for (const Edge& e : edges_) {
    if (e.weight <= bound) pruned.AddEdge(e.u, e.v, e.weight);
  }
  return pruned;
}

int WeightedGraph::NumConnectedComponents() const {
  UnionFind uf(num_nodes_);
  for (const Edge& e : edges_) uf.Union(e.u, e.v);
  return uf.num_sets();
}

}  // namespace graph
}  // namespace tenet
