#ifndef TENET_GRAPH_TREE_H_
#define TENET_GRAPH_TREE_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tenet {
namespace graph {

// An edge of a rooted tree, oriented parent -> child.
struct TreeEdge {
  int parent = 0;
  int child = 0;
  double weight = 0.0;
};

// A rooted tree over arbitrary (sparse) integer node ids — typically node
// ids of a knowledge coherence graph.  Trees produced by Algorithm 1 are
// small (tens of nodes), so adjacency is kept in hash maps keyed by node id
// rather than dense arrays.
//
// Invariants: connected, acyclic, every node reachable from root().
class RootedTree {
 public:
  /// Builds a tree from an unordered, unoriented edge list.  Fails with
  /// InvalidArgument when the edges do not form a tree containing `root`
  /// (cycle, disconnected, or duplicate edge).  A tree may be a single
  /// isolated `root` with no edges.
  static Result<RootedTree> FromEdges(
      int root, const std::vector<std::pair<std::pair<int, int>, double>>&
                    undirected_edges);

  /// Builds from already-oriented edges; same validation.
  static Result<RootedTree> FromOrientedEdges(
      int root, const std::vector<TreeEdge>& edges);

  /// Single-node tree.
  static RootedTree Singleton(int root);

  int root() const { return root_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  bool empty_of_edges() const { return edges_.empty(); }

  /// All node ids, root first, in BFS order of discovery.
  const std::vector<int>& nodes() const { return nodes_; }
  const std::vector<TreeEdge>& edges() const { return edges_; }

  bool Contains(int node) const { return children_.count(node) > 0; }

  /// Children of `node` as (child id, edge weight) pairs; `node` must be in
  /// the tree.
  const std::vector<std::pair<int, double>>& Children(int node) const;

  /// Parent of `node`, or -1 for the root.  `node` must be in the tree.
  int Parent(int node) const;

  /// Sum of all edge weights — the paper's tree weight omega(T).
  double TotalWeight() const { return total_weight_; }

  /// Nodes in post-order (children before parents); the traversal order used
  /// by the tree-splitting algorithms (Algorithms 2 and 3).
  std::vector<int> PostOrderNodes() const;

  /// Weight of the subtree hanging below `node` (inclusive of `node`,
  /// exclusive of the edge to its parent).
  double SubtreeWeight(int node) const;

  /// Extracts the full subtree rooted at `node` as a new tree.
  RootedTree Subtree(int node) const;

 private:
  RootedTree() = default;

  void PostOrderVisit(int node, std::vector<int>& out) const;

  int root_ = -1;
  std::vector<int> nodes_;
  std::vector<TreeEdge> edges_;
  std::unordered_map<int, std::vector<std::pair<int, double>>> children_;
  std::unordered_map<int, int> parent_;
  double total_weight_ = 0.0;
};

}  // namespace graph
}  // namespace tenet

#endif  // TENET_GRAPH_TREE_H_
