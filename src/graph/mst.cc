#include "graph/mst.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/logging.h"
#include "graph/union_find.h"

namespace tenet {
namespace graph {

SpanningForest KruskalMst(const WeightedGraph& g) {
  SpanningForest result;
  std::vector<int> order(g.num_edges());
  for (int i = 0; i < g.num_edges(); ++i) order[i] = i;
  const std::vector<Edge>& edges = g.edges();
  std::sort(order.begin(), order.end(), [&edges](int a, int b) {
    if (edges[a].weight != edges[b].weight) {
      return edges[a].weight < edges[b].weight;
    }
    return a < b;
  });

  UnionFind uf(g.num_nodes());
  for (int idx : order) {
    const Edge& e = edges[idx];
    if (uf.Union(e.u, e.v)) {
      result.edge_indices.push_back(idx);
      result.total_weight += e.weight;
      if (uf.num_sets() == 1) break;
    }
  }
  result.spans_all = (g.num_nodes() <= 1) || (uf.num_sets() == 1);
  return result;
}

SpanningForest PrimMst(const WeightedGraph& g, int root) {
  TENET_CHECK(root >= 0 && root < g.num_nodes());
  SpanningForest result;
  std::vector<bool> in_tree(g.num_nodes(), false);

  // (weight, edge_index, frontier_node)
  using Item = std::tuple<double, int, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;

  auto push_incident = [&](int node) {
    for (int edge_index : g.IncidentEdges(node)) {
      int other = g.OtherEndpoint(edge_index, node);
      if (!in_tree[other]) {
        heap.emplace(g.edges()[edge_index].weight, edge_index, other);
      }
    }
  };

  in_tree[root] = true;
  int covered = 1;
  push_incident(root);
  while (!heap.empty()) {
    auto [weight, edge_index, node] = heap.top();
    heap.pop();
    if (in_tree[node]) continue;
    in_tree[node] = true;
    ++covered;
    result.edge_indices.push_back(edge_index);
    result.total_weight += weight;
    push_incident(node);
  }
  result.spans_all = covered == g.num_nodes();
  return result;
}

}  // namespace graph
}  // namespace tenet
