#ifndef TENET_GRAPH_HOPCROFT_KARP_H_
#define TENET_GRAPH_HOPCROFT_KARP_H_

#include <vector>

namespace tenet {
namespace graph {

// Maximum cardinality matching in a bipartite graph, O(E * sqrt(V)).
// Algorithm 1 step (f) matches subtrees produced by tree splitting to
// mention roots; the matching must be maximum so that the solver only
// reports a failure warning when *no* assignment of subtrees exists.
//
// Left vertices are 0..num_left-1, right vertices 0..num_right-1.
class HopcroftKarp {
 public:
  HopcroftKarp(int num_left, int num_right);

  /// Adds an edge between left vertex `l` and right vertex `r`.
  void AddEdge(int l, int r);

  /// Computes a maximum matching; returns its size.  Idempotent.
  int MaxMatching();

  /// After MaxMatching(): partner of left vertex `l`, or -1 if unmatched.
  int MatchOfLeft(int l) const { return match_left_[l]; }
  /// After MaxMatching(): partner of right vertex `r`, or -1 if unmatched.
  int MatchOfRight(int r) const { return match_right_[r]; }

 private:
  bool Bfs();
  bool Dfs(int l);

  int num_left_;
  int num_right_;
  std::vector<std::vector<int>> adj_;  // left -> rights
  std::vector<int> match_left_;
  std::vector<int> match_right_;
  std::vector<int> layer_;
  bool solved_ = false;
  int matching_size_ = 0;
};

}  // namespace graph
}  // namespace tenet

#endif  // TENET_GRAPH_HOPCROFT_KARP_H_
