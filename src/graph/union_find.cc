#include "graph/union_find.h"

#include "common/logging.h"

namespace tenet {
namespace graph {

UnionFind::UnionFind(int n)
    : parent_(n), rank_(n, 0), set_size_(n, 1), num_sets_(n) {
  TENET_CHECK_GE(n, 0);
  for (int i = 0; i < n; ++i) parent_[i] = i;
}

int UnionFind::Find(int x) {
  TENET_DCHECK(x >= 0 && x < size());
  int root = x;
  while (parent_[root] != root) root = parent_[root];
  // Path compression.
  while (parent_[x] != root) {
    int next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(int a, int b) {
  int ra = Find(a);
  int rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  set_size_[ra] += set_size_[rb];
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --num_sets_;
  return true;
}

int UnionFind::SetSize(int x) { return set_size_[Find(x)]; }

}  // namespace graph
}  // namespace tenet
