#include "graph/dijkstra.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace tenet {
namespace graph {

std::vector<int> ShortestPaths::PathTo(const WeightedGraph& g,
                                       int target) const {
  std::vector<int> path;
  if (target < 0 || target >= static_cast<int>(distance.size()) ||
      distance[target] == kUnreachable) {
    return path;
  }
  int node = target;
  path.push_back(node);
  while (predecessor_edge[node] >= 0) {
    node = g.OtherEndpoint(predecessor_edge[node], node);
    path.push_back(node);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPaths DijkstraBounded(const WeightedGraph& g, int source,
                              double bound) {
  TENET_CHECK(source >= 0 && source < g.num_nodes());
  ShortestPaths result;
  result.distance.assign(g.num_nodes(), ShortestPaths::kUnreachable);
  result.predecessor_edge.assign(g.num_nodes(), -1);
  result.distance[source] = 0.0;

  using Item = std::pair<double, int>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    auto [dist, node] = heap.top();
    heap.pop();
    if (dist > result.distance[node]) continue;  // stale entry
    for (int edge_index : g.IncidentEdges(node)) {
      const Edge& e = g.edges()[edge_index];
      if (e.weight > bound) continue;
      TENET_DCHECK(e.weight >= 0.0);
      int other = g.OtherEndpoint(edge_index, node);
      double candidate = dist + e.weight;
      if (candidate < result.distance[other]) {
        result.distance[other] = candidate;
        result.predecessor_edge[other] = edge_index;
        heap.emplace(candidate, other);
      }
    }
  }
  return result;
}

ShortestPaths Dijkstra(const WeightedGraph& g, int source) {
  return DijkstraBounded(g, source,
                         std::numeric_limits<double>::infinity());
}

}  // namespace graph
}  // namespace tenet
