#ifndef TENET_GRAPH_MST_H_
#define TENET_GRAPH_MST_H_

#include <vector>

#include "graph/graph.h"

namespace tenet {
namespace graph {

// Result of a spanning-tree/forest computation.
struct SpanningForest {
  /// Indices into the input graph's edges() forming the forest.
  std::vector<int> edge_indices;
  /// Sum of the selected edge weights.
  double total_weight = 0.0;
  /// True when the forest is a single tree spanning every node.
  bool spans_all = false;
};

/// Kruskal's minimum spanning forest.  The paper deliberately uses Kruskal's
/// order — cheapest edges globally first — so that low-confidence choices are
/// forced to be consistent with confident ones (Sec. 4.2 discussion); the
/// tree-cover solver and Algorithm 5 both rely on this edge ordering.
/// Ties are broken by edge index, making the result deterministic.
SpanningForest KruskalMst(const WeightedGraph& g);

/// Prim's minimum spanning tree grown from `root` over root's component.
/// Provided for the Kruskal-vs-Prim ablation (see DESIGN.md §7); both
/// algorithms yield a forest of equal total weight on the same component.
SpanningForest PrimMst(const WeightedGraph& g, int root);

}  // namespace graph
}  // namespace tenet

#endif  // TENET_GRAPH_MST_H_
