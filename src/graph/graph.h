#ifndef TENET_GRAPH_GRAPH_H_
#define TENET_GRAPH_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace tenet {
namespace graph {

// One undirected weighted edge.  `u < v` is not required at insertion but
// edges are canonicalized internally so (u,v) and (v,u) are the same edge.
struct Edge {
  int u = 0;
  int v = 0;
  double weight = 0.0;
};

// A simple undirected weighted graph over dense integer node ids [0, n).
//
// Parallel edge inserts keep the minimum weight — the knowledge coherence
// graph needs this when contracting all mention nodes into the major root r
// (Algorithm 1, step (b)): several mention–candidate edges can collapse onto
// the same (r, c) pair and only the cheapest survives.
//
// Example:
//   WeightedGraph g(4);
//   g.AddEdge(0, 1, 0.3);
//   g.AddEdge(1, 0, 0.1);          // keeps 0.1
//   for (const Edge& e : g.edges()) ...
class WeightedGraph {
 public:
  explicit WeightedGraph(int num_nodes);

  /// Inserts or relaxes the undirected edge (u, v). Self-loops are ignored.
  /// Returns the index of the stored edge, or -1 for an ignored self-loop.
  int AddEdge(int u, int v, double weight);

  /// Edge weight, or `missing` when (u, v) is absent.
  double EdgeWeight(int u, int v, double missing) const;

  /// True when the undirected edge (u, v) exists.
  bool HasEdge(int u, int v) const;

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Indices into edges() of the edges incident to `node`.
  const std::vector<int>& IncidentEdges(int node) const;

  /// The endpoint of edge `edge_index` that is not `node`.
  int OtherEndpoint(int edge_index, int node) const;

  /// Copy of this graph containing only edges of weight <= `bound`
  /// (Algorithm 1, step (a): edge pruning).
  WeightedGraph PrunedCopy(double bound) const;

  /// Number of connected components (isolated nodes count).
  int NumConnectedComponents() const;

 private:
  uint64_t EdgeKey(int u, int v) const;

  int num_nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> incident_;               // node -> edge idx
  std::unordered_map<uint64_t, int> edge_index_by_key_;  // canonical (u,v)
};

}  // namespace graph
}  // namespace tenet

#endif  // TENET_GRAPH_GRAPH_H_
