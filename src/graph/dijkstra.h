#ifndef TENET_GRAPH_DIJKSTRA_H_
#define TENET_GRAPH_DIJKSTRA_H_

#include <limits>
#include <vector>

#include "graph/graph.h"

namespace tenet {
namespace graph {

// Single-source shortest path result over non-negative edge weights.
struct ShortestPaths {
  /// distance[v] is the cost of the cheapest path source -> v, or
  /// kUnreachable when no path exists.
  std::vector<double> distance;
  /// predecessor_edge[v] is the index (into the graph's edges()) of the last
  /// edge on the cheapest path to v, or -1 for the source / unreachable.
  std::vector<int> predecessor_edge;

  static constexpr double kUnreachable =
      std::numeric_limits<double>::infinity();

  /// Reconstructs the node sequence source..target (empty if unreachable).
  std::vector<int> PathTo(const WeightedGraph& g, int target) const;
};

/// Dijkstra from `source`.  All edge weights must be >= 0 (semantic
/// distances in the coherence graph are by construction in [0, 2]).
ShortestPaths Dijkstra(const WeightedGraph& g, int source);

/// Dijkstra restricted to edges with weight <= `bound`; used when computing
/// mention-to-subtree distances in the maximum-matching step of Algorithm 1,
/// where only edges surviving the pruning may be traversed.
ShortestPaths DijkstraBounded(const WeightedGraph& g, int source,
                              double bound);

}  // namespace graph
}  // namespace tenet

#endif  // TENET_GRAPH_DIJKSTRA_H_
