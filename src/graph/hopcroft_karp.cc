#include "graph/hopcroft_karp.h"

#include <limits>
#include <queue>

#include "common/logging.h"

namespace tenet {
namespace graph {
namespace {
constexpr int kInfLayer = std::numeric_limits<int>::max();
}  // namespace

HopcroftKarp::HopcroftKarp(int num_left, int num_right)
    : num_left_(num_left),
      num_right_(num_right),
      adj_(num_left),
      match_left_(num_left, -1),
      match_right_(num_right, -1),
      layer_(num_left, kInfLayer) {
  TENET_CHECK_GE(num_left, 0);
  TENET_CHECK_GE(num_right, 0);
}

void HopcroftKarp::AddEdge(int l, int r) {
  TENET_CHECK(l >= 0 && l < num_left_);
  TENET_CHECK(r >= 0 && r < num_right_);
  adj_[l].push_back(r);
  solved_ = false;
}

bool HopcroftKarp::Bfs() {
  std::queue<int> queue;
  for (int l = 0; l < num_left_; ++l) {
    if (match_left_[l] == -1) {
      layer_[l] = 0;
      queue.push(l);
    } else {
      layer_[l] = kInfLayer;
    }
  }
  bool found_augmenting = false;
  while (!queue.empty()) {
    int l = queue.front();
    queue.pop();
    for (int r : adj_[l]) {
      int next = match_right_[r];
      if (next == -1) {
        found_augmenting = true;
      } else if (layer_[next] == kInfLayer) {
        layer_[next] = layer_[l] + 1;
        queue.push(next);
      }
    }
  }
  return found_augmenting;
}

bool HopcroftKarp::Dfs(int l) {
  for (int r : adj_[l]) {
    int next = match_right_[r];
    if (next == -1 || (layer_[next] == layer_[l] + 1 && Dfs(next))) {
      match_left_[l] = r;
      match_right_[r] = l;
      return true;
    }
  }
  layer_[l] = kInfLayer;
  return false;
}

int HopcroftKarp::MaxMatching() {
  if (solved_) return matching_size_;
  for (int& m : match_left_) m = -1;
  for (int& m : match_right_) m = -1;
  matching_size_ = 0;
  while (Bfs()) {
    for (int l = 0; l < num_left_; ++l) {
      if (match_left_[l] == -1 && Dfs(l)) ++matching_size_;
    }
  }
  solved_ = true;
  return matching_size_;
}

}  // namespace graph
}  // namespace tenet
