#ifndef TENET_GRAPH_UNION_FIND_H_
#define TENET_GRAPH_UNION_FIND_H_

#include <cstdint>
#include <vector>

namespace tenet {
namespace graph {

// Disjoint-set forest with union by rank and path compression.  Used by
// Kruskal's MST (Algorithm 1, step (c)) and by the Kruskal-style greedy
// disambiguation (Algorithm 5).
class UnionFind {
 public:
  /// Creates `n` singleton sets labelled 0..n-1.
  explicit UnionFind(int n);

  /// Representative of the set containing `x`.
  int Find(int x);

  /// Merges the sets of `a` and `b`; returns false when already merged.
  bool Union(int a, int b);

  /// True when `a` and `b` are in the same set.
  bool Connected(int a, int b) { return Find(a) == Find(b); }

  /// Number of elements in the set containing `x`.
  int SetSize(int x);

  /// Current number of disjoint sets.
  int num_sets() const { return num_sets_; }

  int size() const { return static_cast<int>(parent_.size()); }

 private:
  std::vector<int> parent_;
  std::vector<int> rank_;
  std::vector<int> set_size_;
  int num_sets_;
};

}  // namespace graph
}  // namespace tenet

#endif  // TENET_GRAPH_UNION_FIND_H_
