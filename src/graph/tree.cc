#include "graph/tree.h"

#include <deque>
#include <unordered_set>

#include "common/logging.h"

namespace tenet {
namespace graph {

Result<RootedTree> RootedTree::FromEdges(
    int root, const std::vector<std::pair<std::pair<int, int>, double>>&
                  undirected_edges) {
  // Orient the edges away from the root with a BFS.
  std::unordered_map<int, std::vector<std::pair<int, double>>> adj;
  for (const auto& [uv, weight] : undirected_edges) {
    adj[uv.first].emplace_back(uv.second, weight);
    adj[uv.second].emplace_back(uv.first, weight);
  }
  std::vector<TreeEdge> oriented;
  oriented.reserve(undirected_edges.size());
  std::unordered_set<int> visited{root};
  std::deque<int> frontier{root};
  while (!frontier.empty()) {
    int node = frontier.front();
    frontier.pop_front();
    auto it = adj.find(node);
    if (it == adj.end()) continue;
    for (const auto& [next, weight] : it->second) {
      if (visited.insert(next).second) {
        oriented.push_back(TreeEdge{node, next, weight});
        frontier.push_back(next);
      }
    }
  }
  if (oriented.size() != undirected_edges.size()) {
    return Status::InvalidArgument(
        "edge list is not a tree rooted at the given root (cycle or "
        "disconnected component)");
  }
  return FromOrientedEdges(root, oriented);
}

Result<RootedTree> RootedTree::FromOrientedEdges(
    int root, const std::vector<TreeEdge>& edges) {
  RootedTree tree;
  tree.root_ = root;
  tree.children_[root] = {};
  tree.parent_[root] = -1;
  tree.nodes_.push_back(root);
  // Index edges by parent so we can attach them in BFS order regardless of
  // the order they were supplied in.
  std::unordered_map<int, std::vector<const TreeEdge*>> by_parent;
  for (const TreeEdge& e : edges) by_parent[e.parent].push_back(&e);

  std::deque<int> frontier{root};
  size_t attached = 0;
  while (!frontier.empty()) {
    int node = frontier.front();
    frontier.pop_front();
    auto it = by_parent.find(node);
    if (it == by_parent.end()) continue;
    for (const TreeEdge* e : it->second) {
      if (tree.children_.count(e->child) > 0) {
        return Status::InvalidArgument("duplicate node in tree edges");
      }
      tree.children_[node].emplace_back(e->child, e->weight);
      tree.children_[e->child] = {};
      tree.parent_[e->child] = node;
      tree.nodes_.push_back(e->child);
      tree.edges_.push_back(*e);
      tree.total_weight_ += e->weight;
      frontier.push_back(e->child);
      ++attached;
    }
  }
  if (attached != edges.size()) {
    return Status::InvalidArgument(
        "oriented edges do not form a tree reachable from the root");
  }
  return tree;
}

RootedTree RootedTree::Singleton(int root) {
  RootedTree tree;
  tree.root_ = root;
  tree.children_[root] = {};
  tree.parent_[root] = -1;
  tree.nodes_.push_back(root);
  return tree;
}

const std::vector<std::pair<int, double>>& RootedTree::Children(
    int node) const {
  auto it = children_.find(node);
  TENET_CHECK(it != children_.end()) << "node " << node << " not in tree";
  return it->second;
}

int RootedTree::Parent(int node) const {
  auto it = parent_.find(node);
  TENET_CHECK(it != parent_.end()) << "node " << node << " not in tree";
  return it->second;
}

void RootedTree::PostOrderVisit(int node, std::vector<int>& out) const {
  for (const auto& [child, weight] : Children(node)) {
    (void)weight;
    PostOrderVisit(child, out);
  }
  out.push_back(node);
}

std::vector<int> RootedTree::PostOrderNodes() const {
  std::vector<int> out;
  out.reserve(nodes_.size());
  PostOrderVisit(root_, out);
  return out;
}

double RootedTree::SubtreeWeight(int node) const {
  double weight = 0.0;
  for (const auto& [child, edge_weight] : Children(node)) {
    weight += edge_weight + SubtreeWeight(child);
  }
  return weight;
}

RootedTree RootedTree::Subtree(int node) const {
  std::vector<TreeEdge> edges;
  std::deque<int> frontier{node};
  while (!frontier.empty()) {
    int current = frontier.front();
    frontier.pop_front();
    for (const auto& [child, weight] : Children(current)) {
      edges.push_back(TreeEdge{current, child, weight});
      frontier.push_back(child);
    }
  }
  Result<RootedTree> subtree = FromOrientedEdges(node, edges);
  TENET_CHECK(subtree.ok());
  return std::move(subtree).value();
}

}  // namespace graph
}  // namespace tenet
