#ifndef TENET_EVAL_HARNESS_H_
#define TENET_EVAL_HARNESS_H_

#include <string>

#include "baselines/linker.h"
#include "datasets/document.h"
#include "eval/metrics.h"
#include "text/gazetteer.h"

namespace tenet {
namespace eval {

// Aggregate scores of one system over one dataset.
struct SystemScores {
  std::string system;
  std::string dataset;
  PRF entity_linking;       // Table 3
  PRF relation_linking;     // Table 4
  PRF mention_detection;    // Figure 6(a)
  PRF isolated_detection;   // Figure 6(c)
  double total_ms = 0.0;    // wall-clock over all documents
  int failed_documents = 0; // documents the system errored on
};

/// Runs `linker` end-to-end over every document of `dataset` and scores
/// all four measures.
SystemScores EvaluateEndToEnd(const baselines::Linker& linker,
                              const datasets::Dataset& dataset);

/// Disambiguation-only evaluation (Figure 6(b)): gold mentions are handed
/// to the system as input.
SystemScores EvaluateDisambiguation(const baselines::Linker& linker,
                                    const datasets::Dataset& dataset,
                                    const text::Gazetteer& gazetteer);

/// Formats "P R F" with three decimals for the harness tables.
std::string FormatPRF(const PRF& prf);

}  // namespace eval
}  // namespace tenet

#endif  // TENET_EVAL_HARNESS_H_
