#ifndef TENET_EVAL_HARNESS_H_
#define TENET_EVAL_HARNESS_H_

#include <functional>
#include <string>
#include <vector>

#include "baselines/linker.h"
#include "common/status.h"
#include "datasets/document.h"
#include "datasets/session_generator.h"
#include "eval/metrics.h"
#include "kb/knowledge_base.h"
#include "obs/metrics.h"
#include "serving/session.h"
#include "text/gazetteer.h"

namespace tenet {

namespace serving {
class BatchLinkingService;
}  // namespace serving

namespace eval {

// One document the system errored on.  Failures are isolated per document:
// the batch run records them and continues, so one corrupt or pathological
// document can no longer abort an evaluation.
struct DocumentFailure {
  std::string doc_id;
  Status status;
};

// Aggregate scores of one system over one dataset.
struct SystemScores {
  std::string system;
  std::string dataset;
  PRF entity_linking;       // Table 3
  PRF relation_linking;     // Table 4
  PRF mention_detection;    // Figure 6(a)
  PRF isolated_detection;   // Figure 6(c)
  /// Sum of per-document linking latencies.  Identical in meaning whether
  /// the run was serial or parallel, so runtime tables stay comparable.
  double total_ms = 0.0;
  /// End-to-end wall clock of the evaluation; ~total_ms for a serial run,
  /// ~total_ms / num_threads for a well-scaled parallel one.
  double wall_ms = 0.0;
  /// Largest single-document linking latency of the run.  Whatever the
  /// thread count, wall_ms >= max_doc_ms: no document can finish after the
  /// evaluation that contains it.
  double max_doc_ms = 0.0;
  /// Per-document latency percentiles (linear interpolation over the
  /// sorted sample; 0 for an empty dataset).
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  /// Snapshot of the metrics registry the run published to, taken after
  /// the last document resolved (counters are process-cumulative; diff two
  /// snapshots for a per-run window).
  std::vector<obs::MetricPoint> metrics;
  int failed_documents = 0; // documents the system errored on
  /// Subset of failed_documents the guardrails rejected deliberately
  /// (kInvalidArgument / kResourceExhausted): the input was refused, the
  /// system did not malfunction.
  int rejected_documents = 0;
  /// Documents answered by the full pipeline.
  int full_documents = 0;
  /// Documents answered by a degraded mode (ok() with
  /// DegradationInfo.degraded()); these still count toward the PRF scores.
  int degraded_documents = 0;
  /// Session-layer interventions (EvaluateSessions only): links flipped to
  /// a remembered entity, and isolated mentions resolved from memory.
  int session_relinked = 0;
  int session_isolated_resolved = 0;
  /// One record per failed document, in dataset order.
  std::vector<DocumentFailure> failures;

  /// Failures that were NOT deliberate rejections — the signal a hardened
  /// run must keep at zero (tenet_cli exits non-zero otherwise).
  int CrashedDocuments() const {
    return failed_documents - rejected_documents;
  }
};

struct EvalOptions {
  /// 1 runs documents serially in the calling thread; > 1 routes them
  /// through a serving::BatchLinkingService with that many workers.
  /// Results are merged in dataset order either way, so the scores of a
  /// fault-free run are identical across thread counts.
  int num_threads = 1;
};

/// Runs `linker` end-to-end over every document of `dataset` and scores
/// all four measures.
SystemScores EvaluateEndToEnd(const baselines::Linker& linker,
                              const datasets::Dataset& dataset);
SystemScores EvaluateEndToEnd(const baselines::Linker& linker,
                              const datasets::Dataset& dataset,
                              const EvalOptions& options);

// The live-update drill (`tenet_cli eval --kb-update-every N`): what to do
// to the serving KB, and how often, while an evaluation batch is in
// flight.
struct KbUpdatePlan {
  /// Documents between updates; 0 disables the plan entirely.
  int every = 0;
  /// Invoked synchronously from the submitting thread after every `every`
  /// documents, with the running update index (0, 1, ...).  Typically
  /// builds a delta generation from service.generation() and calls
  /// SwapGeneration; failures are the callback's to report.  Documents
  /// submitted before the call finish on the generation they pinned.
  std::function<void(serving::BatchLinkingService& service, int update)>
      apply;
};

/// Runs `dataset` through a caller-owned (typically generation-aware)
/// service, interleaving `plan`'s updates with document submissions, and
/// scores exactly as EvaluateEndToEnd does.  `linker` is only consulted
/// for scoring policy (name, links_relations) — the documents are linked
/// by whatever generation each one pinned at submission, so with a plan
/// that changes answers, scores can legitimately differ from a static run.
SystemScores EvaluateEndToEndLive(const baselines::Linker& linker,
                                  serving::BatchLinkingService& service,
                                  const datasets::Dataset& dataset,
                                  const KbUpdatePlan& plan);

struct SessionEvalOptions {
  /// When false, every turn is linked in isolation (no SessionContext):
  /// the baseline the session-replay table compares against.
  bool use_session_context = true;
  serving::SessionOptions session;
};

/// Session-replay evaluation (DESIGN.md §13): turns of each session are
/// linked in conversation order through one serving::SessionContext —
/// turn k's result is re-ranked against the entities turns 0..k-1
/// resolved, then observed into the memory — and scored per turn exactly
/// as EvaluateEndToEnd scores documents.  `kb` is the serving KB the
/// session layer probes for candidate overlap.
SystemScores EvaluateSessions(const baselines::Linker& linker,
                              const kb::KnowledgeBase& kb,
                              const datasets::SessionDataset& sessions,
                              const SessionEvalOptions& options = {});

/// Disambiguation-only evaluation (Figure 6(b)): gold mentions are handed
/// to the system as input.
SystemScores EvaluateDisambiguation(const baselines::Linker& linker,
                                    const datasets::Dataset& dataset,
                                    const text::Gazetteer& gazetteer);

/// Formats "P R F" with three decimals for the harness tables.
std::string FormatPRF(const PRF& prf);

/// Formats the degraded-vs-full accounting, e.g. "full 4 | degraded 1 |
/// failed 0", for the harness tables.
std::string FormatDegradation(const SystemScores& scores);

}  // namespace eval
}  // namespace tenet

#endif  // TENET_EVAL_HARNESS_H_
