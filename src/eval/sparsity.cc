#include "eval/sparsity.h"

#include <vector>

namespace tenet {
namespace eval {
namespace {

constexpr int kNumThresholds = 10;  // 0.0, 0.1, ..., 0.9

std::vector<SparsityPoint> Sparsity(
    const datasets::Dataset& dataset, const kb::KnowledgeBase& kb,
    const embedding::EmbeddingStore& embeddings, bool include_predicates) {
  (void)kb;
  std::vector<SparsityPoint> points(kNumThresholds);
  std::vector<int> doc_counts(kNumThresholds, 0);
  for (int t = 0; t < kNumThresholds; ++t) {
    points[t].threshold = 0.1 * t;
  }

  for (const datasets::Document& doc : dataset.documents) {
    // Gold concepts of this document.
    std::vector<kb::ConceptRef> concepts;
    for (const datasets::GoldEntityLink& g : doc.gold_entities) {
      if (g.linkable()) concepts.push_back(kb::ConceptRef::Entity(g.entity));
    }
    if (include_predicates) {
      for (const datasets::GoldPredicateLink& g : doc.gold_predicates) {
        if (g.linkable()) {
          concepts.push_back(kb::ConceptRef::Predicate(g.predicate));
        }
      }
    }
    const int n = static_cast<int>(concepts.size());
    if (n < 2) continue;

    // Pairwise distances once; bucket into cumulative thresholds.
    std::vector<int> edges_at(kNumThresholds, 0);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        double distance =
            1.0 - embeddings.Cosine(concepts[i], concepts[j]);
        for (int t = 0; t < kNumThresholds; ++t) {
          if (distance <= points[t].threshold) ++edges_at[t];
        }
      }
    }
    for (int t = 0; t < kNumThresholds; ++t) {
      double e = edges_at[t];
      points[t].density += 2.0 * e / (double{1} * n * (n - 1));
      points[t].avg_degree += 2.0 * e / n;
      ++doc_counts[t];
    }
  }
  for (int t = 0; t < kNumThresholds; ++t) {
    if (doc_counts[t] > 0) {
      points[t].density /= doc_counts[t];
      points[t].avg_degree /= doc_counts[t];
    }
  }
  return points;
}

}  // namespace

std::vector<SparsityPoint> EntitySparsity(
    const datasets::Dataset& dataset, const kb::KnowledgeBase& kb,
    const embedding::EmbeddingStore& embeddings) {
  return Sparsity(dataset, kb, embeddings, /*include_predicates=*/false);
}

std::vector<SparsityPoint> ConceptSparsity(
    const datasets::Dataset& dataset, const kb::KnowledgeBase& kb,
    const embedding::EmbeddingStore& embeddings) {
  return Sparsity(dataset, kb, embeddings, /*include_predicates=*/true);
}

}  // namespace eval
}  // namespace tenet
