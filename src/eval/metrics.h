#ifndef TENET_EVAL_METRICS_H_
#define TENET_EVAL_METRICS_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "datasets/document.h"
#include "kb/types.h"
#include "text/gazetteer.h"

namespace tenet {
namespace eval {

// Precision / recall / F1 accumulator (Sec. 6.1, Evaluation Metrics).
struct PRF {
  int tp = 0;
  int fp = 0;
  int fn = 0;

  double Precision() const { return tp + fp == 0 ? 0.0 : double{1} * tp / (tp + fp); }
  double Recall() const { return tp + fn == 0 ? 0.0 : double{1} * tp / (tp + fn); }
  double F1() const {
    double p = Precision();
    double r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  void Add(const PRF& other) {
    tp += other.tp;
    fp += other.fp;
    fn += other.fn;
  }
};

// A system's output over one document, normalized for scoring (surfaces
// lower-cased).  Produced from core::LinkingResult via FromLinkingResult;
// baselines emit the same structure.
struct SystemPrediction {
  /// Linked noun phrases: (surface, entity).
  std::vector<std::pair<std::string, kb::EntityId>> entity_links;
  /// Linked relational phrases: (lemma, predicate).
  std::vector<std::pair<std::string, kb::PredicateId>> predicate_links;
  /// Mention-detection output: all selected noun surfaces (linked or
  /// isolated).
  std::vector<std::string> selected_noun_surfaces;
  /// Noun surfaces reported as isolated / emerging concepts.
  std::vector<std::string> isolated_noun_surfaces;
};

/// Converts a pipeline result into the scoring structure.
SystemPrediction FromLinkingResult(const core::LinkingResult& result);

/// End-to-end entity linking score (Table 3).  Following Sec. 6.2, only
/// predictions whose surface corresponds to a ground-truth noun phrase are
/// evaluated: exact-surface predictions are judged on their entity; wrong
/// segmentations (prediction overlapping a gold phrase token-wise) count as
/// false positives; phrases outside the gold annotation are ignored.
/// Linking a gold non-linkable phrase is a false positive.
PRF ScoreEntityLinking(const datasets::Document& gold,
                       const SystemPrediction& prediction);

/// End-to-end relation linking score (Table 4); exact lemma matching.
PRF ScoreRelationLinking(const datasets::Document& gold,
                         const SystemPrediction& prediction);

/// Mention detection score (Figure 6(a)): exact surface matching against
/// all gold phrases, linkable and non-linkable alike.
PRF ScoreMentionDetection(const datasets::Document& gold,
                          const SystemPrediction& prediction);

/// Isolated-concept detection (Figure 6(c)): precision of the phrases a
/// system reports as non-linkable.
PRF ScoreIsolatedDetection(const datasets::Document& gold,
                           const SystemPrediction& prediction);

/// Builds the mention universe for the disambiguation-only task (Figure
/// 6(b)): the gold noun phrases are given as input mentions, each a
/// singleton group.
core::MentionSet MentionSetFromGold(const datasets::Document& gold,
                                    const text::Gazetteer& gazetteer);

/// True when the two surfaces share a word-level containment relation
/// (one's token sequence contains the other's), used to classify wrong
/// segmentations.  Case-insensitive.  Exposed for tests.
bool TokenContainment(const std::string& a, const std::string& b);

}  // namespace eval
}  // namespace tenet

#endif  // TENET_EVAL_METRICS_H_
