#include "eval/metrics.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace tenet {
namespace eval {
namespace {

std::vector<std::string> Words(const std::string& s) {
  return SplitString(AsciiToLower(s), ' ');
}

bool IsSubsequenceOfWords(const std::vector<std::string>& needle,
                          const std::vector<std::string>& haystack) {
  if (needle.empty() || needle.size() > haystack.size()) return false;
  for (size_t start = 0; start + needle.size() <= haystack.size(); ++start) {
    bool match = true;
    for (size_t i = 0; i < needle.size(); ++i) {
      if (haystack[start + i] != needle[i]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

}  // namespace

bool TokenContainment(const std::string& a, const std::string& b) {
  std::vector<std::string> wa = Words(a);
  std::vector<std::string> wb = Words(b);
  return IsSubsequenceOfWords(wa, wb) || IsSubsequenceOfWords(wb, wa);
}

SystemPrediction FromLinkingResult(const core::LinkingResult& result) {
  SystemPrediction prediction;
  for (const core::LinkedConcept& link : result.links) {
    std::string surface = AsciiToLower(link.surface);
    if (link.kind == core::Mention::Kind::kNoun) {
      prediction.entity_links.emplace_back(surface, link.concept_ref.id);
      prediction.selected_noun_surfaces.push_back(std::move(surface));
    } else {
      prediction.predicate_links.emplace_back(std::move(surface),
                                              link.concept_ref.id);
    }
  }
  for (int m : result.isolated_mentions) {
    const core::Mention& mention = result.mentions.mention(m);
    if (mention.is_noun()) {
      std::string surface = AsciiToLower(mention.surface);
      prediction.isolated_noun_surfaces.push_back(surface);
      prediction.selected_noun_surfaces.push_back(std::move(surface));
    }
  }
  return prediction;
}

PRF ScoreEntityLinking(const datasets::Document& gold,
                       const SystemPrediction& prediction) {
  PRF prf;
  // Gold: lower surface -> entity (kInvalidEntity for non-linkable).
  std::unordered_map<std::string, kb::EntityId> gold_by_surface;
  for (const datasets::GoldEntityLink& g : gold.gold_entities) {
    gold_by_surface.emplace(AsciiToLower(g.surface), g.entity);
  }

  std::unordered_set<std::string> matched_gold;
  for (const auto& [surface, entity] : prediction.entity_links) {
    auto it = gold_by_surface.find(surface);
    if (it != gold_by_surface.end()) {
      if (it->second == entity) {
        // Correct surface and entity.
        if (matched_gold.insert(surface).second) {
          ++prf.tp;
        }
      } else {
        // Wrong entity, or a linkable prediction on a non-linkable phrase.
        ++prf.fp;
      }
      continue;
    }
    // Wrong segmentation: prediction overlapping some gold phrase.
    bool overlaps = false;
    for (const auto& [gold_surface, gold_entity] : gold_by_surface) {
      (void)gold_entity;
      if (TokenContainment(surface, gold_surface)) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) ++prf.fp;
    // Phrases outside the gold annotation are ignored (Sec. 6.2).
  }

  for (const auto& [surface, entity] : gold_by_surface) {
    if (entity == kb::kInvalidEntity) continue;  // NIL not part of recall
    if (matched_gold.count(surface) == 0) ++prf.fn;
  }
  return prf;
}

PRF ScoreRelationLinking(const datasets::Document& gold,
                         const SystemPrediction& prediction) {
  PRF prf;
  std::unordered_map<std::string, kb::PredicateId> gold_by_lemma;
  for (const datasets::GoldPredicateLink& g : gold.gold_predicates) {
    gold_by_lemma.emplace(AsciiToLower(g.lemma), g.predicate);
  }
  std::unordered_set<std::string> matched_gold;
  for (const auto& [lemma, predicate] : prediction.predicate_links) {
    auto it = gold_by_lemma.find(lemma);
    if (it == gold_by_lemma.end()) continue;  // outside gold: ignored
    if (it->second == predicate) {
      if (matched_gold.insert(lemma).second) ++prf.tp;
    } else {
      ++prf.fp;
    }
  }
  for (const auto& [lemma, predicate] : gold_by_lemma) {
    if (predicate == kb::kInvalidPredicate) continue;
    if (matched_gold.count(lemma) == 0) ++prf.fn;
  }
  return prf;
}

PRF ScoreMentionDetection(const datasets::Document& gold,
                          const SystemPrediction& prediction) {
  PRF prf;
  std::unordered_set<std::string> gold_surfaces;
  for (const datasets::GoldEntityLink& g : gold.gold_entities) {
    gold_surfaces.insert(AsciiToLower(g.surface));
  }
  std::unordered_set<std::string> predicted(
      prediction.selected_noun_surfaces.begin(),
      prediction.selected_noun_surfaces.end());
  for (const std::string& surface : predicted) {
    if (gold_surfaces.count(surface) > 0) {
      ++prf.tp;
    } else {
      ++prf.fp;
    }
  }
  for (const std::string& surface : gold_surfaces) {
    if (predicted.count(surface) == 0) ++prf.fn;
  }
  return prf;
}

PRF ScoreIsolatedDetection(const datasets::Document& gold,
                           const SystemPrediction& prediction) {
  PRF prf;
  std::unordered_map<std::string, bool> gold_linkable;  // surface -> linkable
  for (const datasets::GoldEntityLink& g : gold.gold_entities) {
    gold_linkable.emplace(AsciiToLower(g.surface), g.linkable());
  }
  std::unordered_set<std::string> predicted(
      prediction.isolated_noun_surfaces.begin(),
      prediction.isolated_noun_surfaces.end());
  std::unordered_set<std::string> matched_nil;
  for (const std::string& surface : predicted) {
    auto it = gold_linkable.find(surface);
    if (it != gold_linkable.end()) {
      if (!it->second) {
        ++prf.tp;
        matched_nil.insert(surface);
      } else {
        ++prf.fp;  // claimed a linkable phrase is new
      }
      continue;
    }
    // Wrong segmentation: judge by the overlapped gold phrase's status.
    bool counted = false;
    for (const auto& [gold_surface, linkable] : gold_linkable) {
      if (TokenContainment(surface, gold_surface)) {
        if (linkable) {
          ++prf.fp;
        } else {
          ++prf.tp;
          matched_nil.insert(gold_surface);
        }
        counted = true;
        break;
      }
    }
    (void)counted;  // surfaces outside the gold annotation are ignored
  }
  for (const auto& [surface, linkable] : gold_linkable) {
    if (!linkable && matched_nil.count(surface) == 0) ++prf.fn;
  }
  return prf;
}

core::MentionSet MentionSetFromGold(const datasets::Document& gold,
                                    const text::Gazetteer& gazetteer) {
  core::MentionSet set;
  std::unordered_set<std::string> seen;
  for (const datasets::GoldEntityLink& g : gold.gold_entities) {
    std::string key = AsciiToLower(g.surface);
    if (!seen.insert(key).second) continue;
    core::Mention mention;
    mention.kind = core::Mention::Kind::kNoun;
    mention.surface = g.surface;
    mention.type = gazetteer.LookupType(g.surface);
    mention.sentences = {g.sentence};
    mention.group = set.num_groups();
    int id = set.num_mentions();
    set.mentions.push_back(std::move(mention));
    core::MentionGroup group;
    group.members = {id};
    group.short_mentions = {id};
    group.canopies = {core::Canopy{{id}}};
    set.groups.push_back(std::move(group));
  }
  return set;
}

}  // namespace eval
}  // namespace tenet
