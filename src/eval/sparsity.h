#ifndef TENET_EVAL_SPARSITY_H_
#define TENET_EVAL_SPARSITY_H_

#include <vector>

#include "datasets/document.h"
#include "embedding/embedding_store.h"
#include "kb/knowledge_base.h"

namespace tenet {
namespace eval {

// One point of the sparsity curves of Figures 4 and 5: at semantic-distance
// threshold `threshold`, connect every pair of gold concepts closer than
// the threshold and report
//   density     Den(C)        = 2|E| / (|C| (|C|-1))
//   avg_degree  Avg_degree(C) = 2|E| / |C|
// averaged over the documents of a dataset.
struct SparsityPoint {
  double threshold = 0.0;
  double density = 0.0;
  double avg_degree = 0.0;
};

/// Entity-only sparsity (Figure 4) over distance thresholds 0.0 .. 0.9.
std::vector<SparsityPoint> EntitySparsity(
    const datasets::Dataset& dataset, const kb::KnowledgeBase& kb,
    const embedding::EmbeddingStore& embeddings);

/// Entity + predicate sparsity (Figure 5).
std::vector<SparsityPoint> ConceptSparsity(
    const datasets::Dataset& dataset, const kb::KnowledgeBase& kb,
    const embedding::EmbeddingStore& embeddings);

}  // namespace eval
}  // namespace tenet

#endif  // TENET_EVAL_SPARSITY_H_
