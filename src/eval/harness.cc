#include "eval/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <latch>
#include <limits>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "serving/batch_service.h"

namespace tenet {
namespace eval {
namespace {

// A deliberate guardrail refusal, as opposed to a malfunction.  The text
// guardrails reject with kInvalidArgument (oversized / un-sanitizable
// input) and admission control sheds with kResourceExhausted; anything
// else that fails a document counts as a crash.
bool IsRejection(const Status& status) {
  return status.code() == StatusCode::kInvalidArgument ||
         status.code() == StatusCode::kResourceExhausted;
}

// Linear-interpolated percentile over an unsorted sample (sorts in place).
double Percentile(std::vector<double>& sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double rank = p * static_cast<double>(sample.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  if (lo + 1 >= sample.size()) return sample.back();
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] + frac * (sample[lo + 1] - sample[lo]);
}

// Folds the per-document latency sample into the score percentiles.
void FinishLatencies(std::vector<double>& latencies, SystemScores* scores) {
  scores->latency_p50_ms = Percentile(latencies, 0.50);
  scores->latency_p99_ms = Percentile(latencies, 0.99);
}

// Merges one document's outcome into the running scores.  Shared by the
// serial and parallel paths so the two merge byte-identically; callers
// iterate documents in dataset order.
void ScoreDocument(const baselines::Linker& linker, bool has_relation_gold,
                   const datasets::Document& doc,
                   const Result<core::LinkingResult>& result,
                   SystemScores* scores) {
  if (!result.ok()) {
    ++scores->failed_documents;
    if (IsRejection(result.status())) ++scores->rejected_documents;
    scores->failures.push_back(DocumentFailure{doc.id, result.status()});
    return;
  }
  if (result->degradation.degraded()) {
    ++scores->degraded_documents;
  } else {
    ++scores->full_documents;
  }
  SystemPrediction prediction = FromLinkingResult(*result);
  scores->entity_linking.Add(ScoreEntityLinking(doc, prediction));
  if (has_relation_gold && linker.links_relations()) {
    scores->relation_linking.Add(ScoreRelationLinking(doc, prediction));
  }
  scores->mention_detection.Add(ScoreMentionDetection(doc, prediction));
  scores->isolated_detection.Add(ScoreIsolatedDetection(doc, prediction));
}

SystemScores EvaluateEndToEndSerial(const baselines::Linker& linker,
                                    const datasets::Dataset& dataset) {
  SystemScores scores;
  scores.system = std::string(linker.name());
  scores.dataset = dataset.name;
  WallTimer wall;
  std::vector<double> latencies;
  latencies.reserve(dataset.documents.size());
  for (const datasets::Document& doc : dataset.documents) {
    WallTimer doc_timer;
    Result<core::LinkingResult> result = linker.LinkDocument(doc.text);
    double doc_ms = doc_timer.ElapsedMillis();
    scores.total_ms += doc_ms;
    if (doc_ms > scores.max_doc_ms) scores.max_doc_ms = doc_ms;
    latencies.push_back(doc_ms);
    ScoreDocument(linker, dataset.has_relation_gold, doc, result, &scores);
  }
  scores.wall_ms = wall.ElapsedMillis();
  FinishLatencies(latencies, &scores);
  scores.metrics = obs::MetricsRegistry::Default()->Snapshot();
  return scores;
}

SystemScores EvaluateEndToEndParallel(const baselines::Linker& linker,
                                      const datasets::Dataset& dataset,
                                      int num_threads) {
  SystemScores scores;
  scores.system = std::string(linker.name());
  scores.dataset = dataset.name;
  WallTimer wall;

  // Offline evaluation wants every document answered exactly as the serial
  // loop would: backpressure instead of shedding, no service-imposed
  // deadline, and an admission budget no batch can exhaust.
  serving::ServingOptions sopts;
  sopts.num_threads = num_threads;
  sopts.queue_capacity =
      dataset.documents.size() + 1;  // whole batch fits; +1 for empty sets
  sopts.overflow = QueueOverflowPolicy::kBlock;
  sopts.admission.max_pending = std::numeric_limits<int>::max();
  serving::BatchLinkingService service(&linker, sopts);

  std::vector<std::string> texts;
  texts.reserve(dataset.documents.size());
  for (const datasets::Document& doc : dataset.documents) {
    texts.push_back(doc.text);
  }
  std::vector<serving::ServedResult> served = service.LinkBatch(texts);

  // Deterministic merge: dataset order, independent of completion order.
  std::vector<double> latencies;
  latencies.reserve(dataset.documents.size());
  for (size_t i = 0; i < dataset.documents.size(); ++i) {
    scores.total_ms += served[i].latency_ms;
    if (served[i].latency_ms > scores.max_doc_ms) {
      scores.max_doc_ms = served[i].latency_ms;
    }
    latencies.push_back(served[i].latency_ms);
    ScoreDocument(linker, dataset.has_relation_gold, dataset.documents[i],
                  served[i].result, &scores);
  }
  scores.wall_ms = wall.ElapsedMillis();
  FinishLatencies(latencies, &scores);
  scores.metrics = service.metrics()->Snapshot();
  return scores;
}

}  // namespace

SystemScores EvaluateEndToEnd(const baselines::Linker& linker,
                              const datasets::Dataset& dataset) {
  return EvaluateEndToEnd(linker, dataset, EvalOptions{});
}

SystemScores EvaluateEndToEndLive(const baselines::Linker& linker,
                                  serving::BatchLinkingService& service,
                                  const datasets::Dataset& dataset,
                                  const KbUpdatePlan& plan) {
  SystemScores scores;
  scores.system = std::string(linker.name());
  scores.dataset = dataset.name;
  WallTimer wall;

  // Documents are submitted one at a time (not LinkBatch) so updates can
  // land between submissions: every document before an update pins the old
  // generation, every one after pins the new.
  const size_t n = dataset.documents.size();
  std::vector<serving::ServedResult> served(n);
  std::latch drained(static_cast<ptrdiff_t>(n));
  int updates = 0;
  for (size_t i = 0; i < n; ++i) {
    if (plan.every > 0 && plan.apply && i > 0 &&
        i % static_cast<size_t>(plan.every) == 0) {
      plan.apply(service, updates++);
    }
    Status submitted = service.Submit(
        dataset.documents[i].text, [&served, &drained, i](
                                       serving::ServedResult result) {
          served[i] = std::move(result);
          drained.count_down();
        });
    if (!submitted.ok()) {
      // Shed at the door: the callback never runs, account for it here.
      served[i].result = submitted;
      served[i].shed = true;
      drained.count_down();
    }
  }
  drained.wait();

  // Deterministic merge: dataset order, independent of completion order.
  std::vector<double> latencies;
  latencies.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scores.total_ms += served[i].latency_ms;
    if (served[i].latency_ms > scores.max_doc_ms) {
      scores.max_doc_ms = served[i].latency_ms;
    }
    latencies.push_back(served[i].latency_ms);
    ScoreDocument(linker, dataset.has_relation_gold, dataset.documents[i],
                  served[i].result, &scores);
  }
  scores.wall_ms = wall.ElapsedMillis();
  FinishLatencies(latencies, &scores);
  scores.metrics = service.metrics()->Snapshot();
  return scores;
}

SystemScores EvaluateEndToEnd(const baselines::Linker& linker,
                              const datasets::Dataset& dataset,
                              const EvalOptions& options) {
  if (options.num_threads <= 1) {
    return EvaluateEndToEndSerial(linker, dataset);
  }
  return EvaluateEndToEndParallel(linker, dataset, options.num_threads);
}

SystemScores EvaluateSessions(const baselines::Linker& linker,
                              const kb::KnowledgeBase& kb,
                              const datasets::SessionDataset& sessions,
                              const SessionEvalOptions& options) {
  SystemScores scores;
  scores.system = std::string(linker.name());
  scores.dataset = sessions.name;
  WallTimer wall;
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(sessions.TotalTurns()));
  for (const datasets::Session& session : sessions.sessions) {
    // One context per conversation; turns replay strictly in order.
    serving::SessionContext context(options.session);
    for (const datasets::Document& turn : session.turns) {
      WallTimer doc_timer;
      Result<core::LinkingResult> result =
          options.use_session_context
              ? linker.LinkDocument(turn.text, context.MakeLinkContext())
              : linker.LinkDocument(turn.text);
      if (result.ok() && options.use_session_context) {
        serving::SessionTurnStats stats =
            context.ApplySessionCoherence(kb, &result.value());
        scores.session_relinked += stats.relinked_to_memory;
        scores.session_isolated_resolved += stats.isolated_resolved;
        context.ObserveTurn(result.value());
      }
      double doc_ms = doc_timer.ElapsedMillis();
      scores.total_ms += doc_ms;
      if (doc_ms > scores.max_doc_ms) scores.max_doc_ms = doc_ms;
      latencies.push_back(doc_ms);
      ScoreDocument(linker, /*has_relation_gold=*/false, turn, result,
                    &scores);
    }
  }
  scores.wall_ms = wall.ElapsedMillis();
  FinishLatencies(latencies, &scores);
  scores.metrics = obs::MetricsRegistry::Default()->Snapshot();
  return scores;
}

SystemScores EvaluateDisambiguation(const baselines::Linker& linker,
                                    const datasets::Dataset& dataset,
                                    const text::Gazetteer& gazetteer) {
  SystemScores scores;
  scores.system = std::string(linker.name());
  scores.dataset = dataset.name;
  WallTimer wall;
  std::vector<double> latencies;
  latencies.reserve(dataset.documents.size());
  for (const datasets::Document& doc : dataset.documents) {
    core::MentionSet mentions = MentionSetFromGold(doc, gazetteer);
    WallTimer doc_timer;
    Result<core::LinkingResult> result =
        linker.LinkMentionSet(std::move(mentions));
    double doc_ms = doc_timer.ElapsedMillis();
    scores.total_ms += doc_ms;
    if (doc_ms > scores.max_doc_ms) scores.max_doc_ms = doc_ms;
    latencies.push_back(doc_ms);
    if (!result.ok()) {
      ++scores.failed_documents;
      if (IsRejection(result.status())) ++scores.rejected_documents;
      scores.failures.push_back(DocumentFailure{doc.id, result.status()});
      continue;
    }
    if (result->degradation.degraded()) {
      ++scores.degraded_documents;
    } else {
      ++scores.full_documents;
    }
    SystemPrediction prediction = FromLinkingResult(*result);
    scores.entity_linking.Add(ScoreEntityLinking(doc, prediction));
  }
  scores.wall_ms = wall.ElapsedMillis();
  FinishLatencies(latencies, &scores);
  scores.metrics = obs::MetricsRegistry::Default()->Snapshot();
  return scores;
}

std::string FormatPRF(const PRF& prf) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f %.3f %.3f", prf.Precision(),
                prf.Recall(), prf.F1());
  return std::string(buffer);
}

std::string FormatDegradation(const SystemScores& scores) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "full %d | degraded %d | failed %d",
                scores.full_documents, scores.degraded_documents,
                scores.failed_documents);
  return std::string(buffer);
}

}  // namespace eval
}  // namespace tenet
