#include "eval/harness.h"

#include <cstdio>

#include "common/timer.h"

namespace tenet {
namespace eval {

SystemScores EvaluateEndToEnd(const baselines::Linker& linker,
                              const datasets::Dataset& dataset) {
  SystemScores scores;
  scores.system = std::string(linker.name());
  scores.dataset = dataset.name;
  WallTimer timer;
  for (const datasets::Document& doc : dataset.documents) {
    Result<core::LinkingResult> result = linker.LinkDocument(doc.text);
    if (!result.ok()) {
      ++scores.failed_documents;
      scores.failures.push_back(DocumentFailure{doc.id, result.status()});
      continue;
    }
    if (result->degradation.degraded()) {
      ++scores.degraded_documents;
    } else {
      ++scores.full_documents;
    }
    SystemPrediction prediction = FromLinkingResult(*result);
    scores.entity_linking.Add(ScoreEntityLinking(doc, prediction));
    if (dataset.has_relation_gold && linker.links_relations()) {
      scores.relation_linking.Add(ScoreRelationLinking(doc, prediction));
    }
    scores.mention_detection.Add(ScoreMentionDetection(doc, prediction));
    scores.isolated_detection.Add(ScoreIsolatedDetection(doc, prediction));
  }
  scores.total_ms = timer.ElapsedMillis();
  return scores;
}

SystemScores EvaluateDisambiguation(const baselines::Linker& linker,
                                    const datasets::Dataset& dataset,
                                    const text::Gazetteer& gazetteer) {
  SystemScores scores;
  scores.system = std::string(linker.name());
  scores.dataset = dataset.name;
  WallTimer timer;
  for (const datasets::Document& doc : dataset.documents) {
    core::MentionSet mentions = MentionSetFromGold(doc, gazetteer);
    Result<core::LinkingResult> result =
        linker.LinkMentionSet(std::move(mentions));
    if (!result.ok()) {
      ++scores.failed_documents;
      scores.failures.push_back(DocumentFailure{doc.id, result.status()});
      continue;
    }
    if (result->degradation.degraded()) {
      ++scores.degraded_documents;
    } else {
      ++scores.full_documents;
    }
    SystemPrediction prediction = FromLinkingResult(*result);
    scores.entity_linking.Add(ScoreEntityLinking(doc, prediction));
  }
  scores.total_ms = timer.ElapsedMillis();
  return scores;
}

std::string FormatPRF(const PRF& prf) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f %.3f %.3f", prf.Precision(),
                prf.Recall(), prf.F1());
  return std::string(buffer);
}

std::string FormatDegradation(const SystemScores& scores) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "full %d | degraded %d | failed %d",
                scores.full_documents, scores.degraded_documents,
                scores.failed_documents);
  return std::string(buffer);
}

}  // namespace eval
}  // namespace tenet
