#ifndef TENET_TEXT_WORDLISTS_H_
#define TENET_TEXT_WORDLISTS_H_

#include <string_view>
#include <vector>

namespace tenet {
namespace text {

// Curated static word pools.  They play two roles:
//   * the linguistic lexicon consulted by the NLP substrate (tokenizer,
//     chunker, Open-IE-lite, lemmatizer, feature detector), standing in for
//     the NLTK/spaCy resources of the paper's pipeline; and
//   * the generative vocabulary of the synthetic KB / corpus generators,
//     which share this grammar with the extractor the way the paper's tools
//     share English.
//
// All pools are immutable, ASCII, and ordered deterministically.

// Inflection row of one verb.  Multi-word relational phrases are formed by
// appending a particle/preposition to a verb form ("work" + "at").
struct VerbForms {
  std::string_view lemma;
  std::string_view past;
  std::string_view third;   // third person singular present
  std::string_view gerund;  // -ing form
};

/// All verbs known to the lemmatizer / Open-IE extractor (~70 rows, both
/// regular and irregular).
const std::vector<VerbForms>& Verbs();

/// Subset of verb lemmas the synthetic KB uses for predicate surfaces.
const std::vector<std::string_view>& PredicateVerbLemmas();

/// Verb lemmas that never alias a predicate in the synthetic KB; the corpus
/// generator uses them to render non-linkable relational phrases.
const std::vector<std::string_view>& NonKbVerbLemmas();

/// Particles/prepositions that may follow a verb in a relational phrase.
const std::vector<std::string_view>& VerbParticles();

// The four linguistic feature classes of Sec. 5.1 (connectors that join
// short-text mentions into long-text mentions).
const std::vector<std::string_view>& CoordinatingConjunctions();  // "and"
const std::vector<std::string_view>& Prepositions();  // "of", "on the", ...
/// True when `word` is an ASCII number word usable as a connector ("11").
bool IsNumberWord(std::string_view word);
/// Punctuation characters that act as mention connectors (":", "-").
const std::vector<std::string_view>& ConnectorPunctuation();

/// Determiners that may prefix a mention ("the", "a").
const std::vector<std::string_view>& Determiners();

/// Common function words ignored by the chunker.
const std::vector<std::string_view>& Stopwords();

/// Third-person pronouns resolved by the coreference canonicalizer.
const std::vector<std::string_view>& Pronouns();

// ---- Name-generation pools (synthetic KB only) ---------------------------

const std::vector<std::string_view>& PersonFirstNames();
const std::vector<std::string_view>& PersonLastNames();
const std::vector<std::string_view>& OrganizationHeads();
const std::vector<std::string_view>& OrganizationSuffixes();
const std::vector<std::string_view>& LocationNames();
const std::vector<std::string_view>& LocationSuffixes();
const std::vector<std::string_view>& WorkHeadNouns();
const std::vector<std::string_view>& TopicAdjectives();
const std::vector<std::string_view>& TopicNouns();
const std::vector<std::string_view>& ProductHeads();
const std::vector<std::string_view>& EventHeads();

/// Looks up the inflection row of `lemma`; nullptr when unknown.
const VerbForms* FindVerbByLemma(std::string_view lemma);

/// Finds the row for which `form` is any inflection; nullptr when unknown.
const VerbForms* FindVerbByAnyForm(std::string_view form);

}  // namespace text
}  // namespace tenet

#endif  // TENET_TEXT_WORDLISTS_H_
