#include "text/lemmatizer.h"

#include "common/string_util.h"
#include "text/wordlists.h"

namespace tenet {
namespace text {

std::string LemmatizeVerb(std::string_view word) {
  std::string lower = AsciiToLower(word);
  if (const VerbForms* v = FindVerbByAnyForm(lower)) {
    return std::string(v->lemma);
  }
  // Fallback suffix rules for verbs outside the table.
  auto ends = [&lower](std::string_view suffix) {
    return EndsWith(lower, suffix) && lower.size() > suffix.size() + 1;
  };
  if (ends("ies")) return lower.substr(0, lower.size() - 3) + "y";
  if (ends("ied")) return lower.substr(0, lower.size() - 3) + "y";
  if (ends("ing") && lower.size() > 5) {
    std::string stem = lower.substr(0, lower.size() - 3);
    // doubled final consonant: "starring" -> "star"
    if (stem.size() >= 2 && stem[stem.size() - 1] == stem[stem.size() - 2]) {
      stem.pop_back();
    }
    return stem;
  }
  if (ends("ed")) {
    std::string stem = lower.substr(0, lower.size() - 2);
    if (stem.size() >= 2 && stem[stem.size() - 1] == stem[stem.size() - 2]) {
      stem.pop_back();
    }
    return stem;
  }
  if (ends("es") && (EndsWith(lower, "shes") || EndsWith(lower, "ches") ||
                     EndsWith(lower, "xes") || EndsWith(lower, "sses"))) {
    return lower.substr(0, lower.size() - 2);
  }
  if (ends("s") && !EndsWith(lower, "ss")) {
    return lower.substr(0, lower.size() - 1);
  }
  return lower;
}

std::string LemmatizeRelationalPhrase(std::string_view phrase) {
  std::vector<std::string> words = SplitString(phrase, ' ');
  if (words.empty()) return "";
  std::string out = LemmatizeVerb(words[0]);
  for (size_t i = 1; i < words.size(); ++i) {
    out += ' ';
    out += AsciiToLower(words[i]);
  }
  return out;
}

bool IsKnownVerbForm(std::string_view word) {
  return FindVerbByAnyForm(AsciiToLower(word)) != nullptr;
}

}  // namespace text
}  // namespace tenet
