#include "text/gazetteer.h"

#include "common/string_util.h"

namespace tenet {
namespace text {

void Gazetteer::AddSurface(std::string_view surface, kb::EntityType type,
                           bool lowercase_mention) {
  std::string key = AsciiToLower(surface);
  if (key.empty()) return;
  auto [it, inserted] = entries_.emplace(key, Entry{type, lowercase_mention});
  if (!inserted) {
    it->second.lowercase_mention |= lowercase_mention;
  }
  if (lowercase_mention) {
    int tokens = 1;
    for (char c : key) {
      if (c == ' ') ++tokens;
    }
    if (tokens > max_lowercase_tokens_) max_lowercase_tokens_ = tokens;
  }
}

std::optional<kb::EntityType> Gazetteer::LookupType(
    std::string_view surface) const {
  auto it = entries_.find(AsciiToLower(surface));
  if (it == entries_.end()) return std::nullopt;
  return it->second.type;
}

bool Gazetteer::Contains(std::string_view surface) const {
  return entries_.count(AsciiToLower(surface)) > 0;
}

bool Gazetteer::IsLowercaseMention(std::string_view surface) const {
  auto it = entries_.find(AsciiToLower(surface));
  return it != entries_.end() && it->second.lowercase_mention;
}

}  // namespace text
}  // namespace tenet
