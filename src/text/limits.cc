#include "text/limits.h"

#include "obs/metrics.h"

namespace tenet {
namespace text {
namespace {

// Guardrail counter families, resolved once against the default registry
// and cached (same idiom as PipelineMetrics in core/pipeline.cc).
struct InputMetrics {
  obs::Counter* rejected[4];
  obs::Counter* truncated[6];
};

const InputMetrics& Metrics() {
  static const InputMetrics* metrics = [] {
    obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
    constexpr const char* kRejectedHelp =
        "Documents rejected at the text front door before any linking "
        "work, by guardrail reason (DESIGN.md §13).";
    constexpr const char* kTruncatedHelp =
        "Truncate-and-annotate guardrail firings, by reason; units vary "
        "per reason (bytes for invalid_utf8, list entries otherwise).";
    auto* m = new InputMetrics;
    auto rejected = [&](const char* reason) {
      return registry->GetCounter("tenet_input_rejected_total", kRejectedHelp,
                                  obs::LabelPair("reason", reason));
    };
    m->rejected[static_cast<int>(InputRejectReason::kDocumentBytes)] =
        rejected("document_bytes");
    m->rejected[static_cast<int>(InputRejectReason::kInvalidUtf8)] =
        rejected("invalid_utf8");
    m->rejected[static_cast<int>(InputRejectReason::kTokenizeFault)] =
        rejected("tokenize_fault");
    m->rejected[static_cast<int>(InputRejectReason::kExtractFault)] =
        rejected("extract_fault");
    auto truncated = [&](const char* reason) {
      return registry->GetCounter("tenet_input_truncated_total",
                                  kTruncatedHelp,
                                  obs::LabelPair("reason", reason));
    };
    m->truncated[static_cast<int>(InputTruncateReason::kInvalidUtf8)] =
        truncated("invalid_utf8");
    m->truncated[static_cast<int>(InputTruncateReason::kTokenBytes)] =
        truncated("token_bytes");
    m->truncated[static_cast<int>(InputTruncateReason::kTokenCount)] =
        truncated("token_count");
    m->truncated[static_cast<int>(InputTruncateReason::kMentions)] =
        truncated("mentions");
    m->truncated[static_cast<int>(InputTruncateReason::kRelations)] =
        truncated("relations");
    m->truncated[static_cast<int>(InputTruncateReason::kCandidates)] =
        truncated("candidates");
    return m;
  }();
  return *metrics;
}

}  // namespace

void RecordInputRejected(InputRejectReason reason) {
  Metrics().rejected[static_cast<int>(reason)]->Increment();
}

void RecordInputTruncated(InputTruncateReason reason, int64_t n) {
  if (n <= 0) return;
  Metrics().truncated[static_cast<int>(reason)]->Increment(n);
}

}  // namespace text
}  // namespace tenet
