#ifndef TENET_TEXT_GAZETTEER_H_
#define TENET_TEXT_GAZETTEER_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "kb/types.h"

namespace tenet {
namespace text {

// Surface-form dictionary used for NER-style typing and for recognizing
// lowercase mentions (topics such as "machine learning" that carry no
// capitalization signal).  This is the TAGME-dictionary stand-in: in the
// paper the spotter's dictionary is likewise derived from the KB's
// labels/aliases.
//
// Lookups are case-insensitive.  A surface registered multiple times with
// different types keeps the first type (dominant sense).
class Gazetteer {
 public:
  Gazetteer() = default;

  /// Registers a surface form with its entity type.  `lowercase_mention`
  /// marks surfaces that should be spotted even without capitalization.
  void AddSurface(std::string_view surface, kb::EntityType type,
                  bool lowercase_mention = false);

  /// NER type of `surface`, or nullopt when unknown.
  std::optional<kb::EntityType> LookupType(std::string_view surface) const;

  bool Contains(std::string_view surface) const;

  /// True when `surface` may be spotted in lowercase text.
  bool IsLowercaseMention(std::string_view surface) const;

  /// Longest registered lowercase-mention phrase, in whitespace tokens;
  /// bounds the n-gram scan of the extractor.
  int max_lowercase_tokens() const { return max_lowercase_tokens_; }

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    kb::EntityType type;
    bool lowercase_mention;
  };
  std::unordered_map<std::string, Entry> entries_;
  int max_lowercase_tokens_ = 0;
};

}  // namespace text
}  // namespace tenet

#endif  // TENET_TEXT_GAZETTEER_H_
