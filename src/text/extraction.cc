#include "text/extraction.h"

#include <algorithm>
#include <string>

#include "common/dependency_health.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/utf8.h"
#include "text/lemmatizer.h"
#include "text/tokenizer.h"
#include "text/wordlists.h"

namespace tenet {
namespace text {
namespace {

bool IsInPool(const std::vector<std::string_view>& pool,
              std::string_view word) {
  std::string lower = AsciiToLower(word);
  return std::find(pool.begin(), pool.end(), lower) != pool.end();
}

bool IsPronoun(std::string_view word) { return IsInPool(Pronouns(), word); }

// True when a capitalized sentence-initial token is merely a function word
// ("The", "He", "During") rather than the start of a name.
bool IsFunctionWord(std::string_view word) {
  return IsInPool(Stopwords(), word) || IsInPool(Determiners(), word) ||
         IsKnownVerbForm(word);
}

std::string JoinTokens(const TokenizedDocument& doc, int begin, int end) {
  std::string out;
  for (int i = begin; i < end; ++i) {
    if (!out.empty() && !doc.tokens[i].is_punct) out += ' ';
    out += doc.tokens[i].t;
  }
  return out;
}

}  // namespace

Extractor::Extractor(const Gazetteer* gazetteer) : gazetteer_(gazetteer) {
  TENET_CHECK(gazetteer != nullptr);
}

ExtractionResult Extractor::ExtractFromText(
    std::string_view document_text) const {
  return Extract(Tokenize(document_text));
}

Result<ExtractionResult> Extractor::ExtractFromText(
    std::string_view document_text, const TextLimits& limits,
    TextGuardReport* report) const {
  TextGuardReport local;
  TextGuardReport* rep = report != nullptr ? report : &local;

  // Reject-before-work: past this size even tokenization cost can blow a
  // serving deadline, so no partial output either.
  if (document_text.size() > limits.max_document_bytes) {
    RecordInputRejected(InputRejectReason::kDocumentBytes);
    return Status::InvalidArgument(
        "document of " + std::to_string(document_text.size()) +
        " bytes exceeds max_document_bytes=" +
        std::to_string(limits.max_document_bytes));
  }

  {
    const bool faulted = TENET_FAULT_POINT("text/tokenize");
    TENET_OBSERVE_DEPENDENCY("text/tokenize", !faulted);
    if (faulted) {
      RecordInputRejected(InputRejectReason::kTokenizeFault);
      return Status::Internal("injected fault at text/tokenize");
    }
  }

  // Invalid bytes never reach the tokenizer or the ASCII case fold: they
  // are either replaced with spaces (offset-preserving, so the garbage
  // becomes token boundaries) or the document is rejected.
  std::string sanitized;
  std::string_view input = document_text;
  const Utf8Validation utf8 = ValidateUtf8(document_text);
  if (!utf8.valid) {
    if (!limits.sanitize_invalid_utf8) {
      RecordInputRejected(InputRejectReason::kInvalidUtf8);
      return Status::InvalidArgument(
          "invalid UTF-8 at byte " + std::to_string(utf8.first_invalid) +
          " (" + std::to_string(utf8.invalid_bytes) + " invalid bytes)");
    }
    sanitized = SanitizeUtf8(document_text);
    input = sanitized;
    rep->invalid_utf8_bytes = utf8.invalid_bytes;
    RecordInputTruncated(InputTruncateReason::kInvalidUtf8,
                         static_cast<int64_t>(utf8.invalid_bytes));
  }

  TokenizedDocument doc = Tokenize(input, limits, rep);
  RecordInputTruncated(InputTruncateReason::kTokenBytes,
                       rep->truncated_tokens);
  if (rep->token_cap_hit) {
    RecordInputTruncated(InputTruncateReason::kTokenCount);
  }

  {
    const bool faulted = TENET_FAULT_POINT("text/extract");
    TENET_OBSERVE_DEPENDENCY("text/extract", !faulted);
    if (faulted) {
      RecordInputRejected(InputRejectReason::kExtractFault);
      return Status::Internal("injected fault at text/extract");
    }
  }

  ExtractionResult result = Extract(doc);

  // Truncate-and-annotate: a mention storm must degrade the document, not
  // drop it.  The kept prefix preserves document order; the trailing
  // feature link is cleared because its right-hand mention is gone.
  if (static_cast<int>(result.mentions.size()) > limits.max_mentions) {
    rep->dropped_mentions =
        static_cast<int>(result.mentions.size()) - limits.max_mentions;
    result.mentions.resize(limits.max_mentions);
    result.link_after.resize(limits.max_mentions);
    if (!result.link_after.empty()) result.link_after.back() = std::nullopt;
    RecordInputTruncated(InputTruncateReason::kMentions,
                         rep->dropped_mentions);
  }
  if (static_cast<int>(result.relations.size()) > limits.max_relations) {
    rep->dropped_relations =
        static_cast<int>(result.relations.size()) - limits.max_relations;
    result.relations.resize(limits.max_relations);
    RecordInputTruncated(InputTruncateReason::kRelations,
                         rep->dropped_relations);
  }
  return result;
}

ExtractionResult Extractor::Extract(const TokenizedDocument& doc) const {
  ExtractionResult result;
  const int num_tokens = static_cast<int>(doc.tokens.size());
  std::vector<bool> in_mention(num_tokens, false);

  // ---- Pass 1: capitalized-run mentions ---------------------------------
  for (int s = 0; s < doc.num_sentences(); ++s) {
    const int sent_begin = doc.sentence_begin[s];
    const int sent_end = doc.SentenceEnd(s);
    int i = sent_begin;
    while (i < sent_end) {
      const Token& tok = doc.tokens[i];
      bool starts_run = !tok.is_punct && IsCapitalized(tok.t);
      if (starts_run && i == sent_begin && IsFunctionWord(tok.t)) {
        // Sentence-initial "The"/"He"/"During": only a name start when it is
        // a capitalized determiner directly followed by another capitalized
        // word ("The Storm ...").
        bool title_start =
            IsInPool(Determiners(), tok.t) && i + 1 < sent_end &&
            !doc.tokens[i + 1].is_punct && IsCapitalized(doc.tokens[i + 1].t);
        if (!title_start) starts_run = false;
      }
      if (starts_run && IsPronoun(tok.t)) starts_run = false;
      if (!starts_run) {
        ++i;
        continue;
      }
      int begin = i;
      int end = i + 1;
      // A run extends over strictly capitalized tokens; lowercase connectors
      // ("of the") intentionally terminate it — they are the linguistic
      // features that the canopy machinery rejoins later.  A number joins
      // the run only at its end ("Falcon 9"); a number *between* two
      // capitalized tokens stays outside as a connector ("Apollo 11
      // mission" style, Sec. 5.1).
      while (end < sent_end && !doc.tokens[end].is_punct &&
             IsCapitalized(doc.tokens[end].t)) {
        ++end;
      }
      if (end < sent_end && !doc.tokens[end].is_punct &&
          IsAsciiNumber(doc.tokens[end].t) &&
          !(end + 1 < sent_end && !doc.tokens[end + 1].is_punct &&
            IsCapitalized(doc.tokens[end + 1].t))) {
        ++end;
      }
      ShortMention mention;
      mention.surface = JoinTokens(doc, begin, end);
      mention.type = gazetteer_->LookupType(mention.surface);
      mention.sentence = s;
      mention.token_begin = begin;
      mention.token_end = end;
      for (int t = begin; t < end; ++t) in_mention[t] = true;
      result.mentions.push_back(std::move(mention));
      i = end;
    }
  }

  // ---- Pass 2: lowercase gazetteer mentions (topics) --------------------
  const int max_ngram = std::max(1, gazetteer_->max_lowercase_tokens());
  for (int s = 0; s < doc.num_sentences(); ++s) {
    const int sent_begin = doc.sentence_begin[s];
    const int sent_end = doc.SentenceEnd(s);
    int i = sent_begin;
    while (i < sent_end) {
      if (in_mention[i] || doc.tokens[i].is_punct ||
          IsCapitalized(doc.tokens[i].t)) {
        ++i;
        continue;
      }
      int matched_end = -1;
      for (int n = std::min(max_ngram, sent_end - i); n >= 1; --n) {
        int end = i + n;
        bool clean = true;
        for (int t = i; t < end; ++t) {
          if (in_mention[t] || doc.tokens[t].is_punct) {
            clean = false;
            break;
          }
        }
        if (!clean) continue;
        std::string surface = JoinTokens(doc, i, end);
        if (gazetteer_->IsLowercaseMention(surface)) {
          matched_end = end;
          break;  // longest match wins
        }
      }
      if (matched_end < 0) {
        ++i;
        continue;
      }
      ShortMention mention;
      mention.surface = JoinTokens(doc, i, matched_end);
      mention.type = gazetteer_->LookupType(mention.surface);
      mention.sentence = s;
      mention.token_begin = i;
      mention.token_end = matched_end;
      for (int t = i; t < matched_end; ++t) in_mention[t] = true;
      result.mentions.push_back(std::move(mention));
      i = matched_end;
    }
  }

  // Keep mentions in document order (pass 2 appended out of order).
  std::sort(result.mentions.begin(), result.mentions.end(),
            [](const ShortMention& a, const ShortMention& b) {
              return a.token_begin < b.token_begin;
            });

  // ---- Pass 3: relational phrases (Open-IE-lite) -------------------------
  // An anchor is a mention span or a resolvable pronoun.  A relation is kept
  // only when a verb (+ optional particle) lies between two anchors of the
  // same sentence, mirroring the paper's "relational phrases that connect
  // two noun phrases in a triple".
  std::vector<bool> is_anchor_token(num_tokens, false);
  for (const ShortMention& m : result.mentions) {
    for (int t = m.token_begin; t < m.token_end; ++t) is_anchor_token[t] = true;
  }
  bool seen_person_before = false;  // any prior person/org mention to bind a pronoun
  int mention_cursor = 0;
  for (int s = 0; s < doc.num_sentences(); ++s) {
    const int sent_begin = doc.sentence_begin[s];
    const int sent_end = doc.SentenceEnd(s);
    // Advance the cursor over mentions before this sentence; pronouns bind
    // to any earlier person/organization mention.
    while (mention_cursor < static_cast<int>(result.mentions.size()) &&
           result.mentions[mention_cursor].sentence < s) {
      const std::optional<kb::EntityType>& type =
          result.mentions[mention_cursor].type;
      if (type == kb::EntityType::kPerson ||
          type == kb::EntityType::kOrganization || !type.has_value()) {
        seen_person_before = true;
      }
      ++mention_cursor;
    }
    for (int i = sent_begin; i < sent_end; ++i) {
      const Token& tok = doc.tokens[i];
      if (tok.is_punct || in_mention[i]) continue;
      if (!IsKnownVerbForm(tok.t) || IsCapitalized(tok.t)) continue;

      int end = i + 1;
      if (end < sent_end && !doc.tokens[end].is_punct &&
          IsInPool(VerbParticles(), doc.tokens[end].t) && !in_mention[end]) {
        ++end;
      }
      // Left anchor: a mention token or pronoun earlier in the sentence, or
      // a pronoun resolved from a previous sentence's subject.
      bool left_anchor = false;
      for (int t = sent_begin; t < i; ++t) {
        if (is_anchor_token[t]) {
          left_anchor = true;
          break;
        }
        if (!doc.tokens[t].is_punct && IsPronoun(doc.tokens[t].t) &&
            seen_person_before) {
          left_anchor = true;
          break;
        }
      }
      // Right anchor: a mention token after the phrase in the same sentence.
      bool right_anchor = false;
      for (int t = end; t < sent_end; ++t) {
        if (is_anchor_token[t]) {
          right_anchor = true;
          break;
        }
      }
      if (!left_anchor || !right_anchor) continue;

      ExtractedRelation rel;
      rel.raw = JoinTokens(doc, i, end);
      rel.lemma = LemmatizeRelationalPhrase(rel.raw);
      rel.sentence = s;
      rel.token_begin = i;
      rel.token_end = end;
      result.relations.push_back(std::move(rel));
      i = end - 1;
    }
  }

  // ---- Pass 4: feature links between adjacent mentions -------------------
  result.link_after.assign(result.mentions.size(), std::nullopt);
  for (size_t m = 0; m + 1 < result.mentions.size(); ++m) {
    const ShortMention& left = result.mentions[m];
    const ShortMention& right = result.mentions[m + 1];
    if (left.sentence != right.sentence) continue;
    if (left.token_end > right.token_begin) continue;  // overlap safety
    std::vector<std::string> gap;
    for (int t = left.token_end; t < right.token_begin; ++t) {
      gap.push_back(doc.tokens[t].t);
    }
    result.link_after[m] = ClassifyConnector(gap);
  }
  return result;
}

}  // namespace text
}  // namespace tenet
