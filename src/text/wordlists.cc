#include "text/wordlists.h"

#include <unordered_map>

#include "common/string_util.h"

namespace tenet {
namespace text {
namespace {

// clang-format off
const std::vector<VerbForms> kVerbs = {
    {"study", "studied", "studies", "studying"},
    {"visit", "visited", "visits", "visiting"},
    {"direct", "directed", "directs", "directing"},
    {"found", "founded", "founds", "founding"},
    {"establish", "established", "establishes", "establishing"},
    {"write", "wrote", "writes", "writing"},
    {"paint", "painted", "paints", "painting"},
    {"compose", "composed", "composes", "composing"},
    {"marry", "married", "marries", "marrying"},
    {"acquire", "acquired", "acquires", "acquiring"},
    {"publish", "published", "publishes", "publishing"},
    {"produce", "produced", "produces", "producing"},
    {"lead", "led", "leads", "leading"},
    {"manage", "managed", "manages", "managing"},
    {"own", "owned", "owns", "owning"},
    {"create", "created", "creates", "creating"},
    {"design", "designed", "designs", "designing"},
    {"develop", "developed", "develops", "developing"},
    {"launch", "launched", "launches", "launching"},
    {"join", "joined", "joins", "joining"},
    {"leave", "left", "leaves", "leaving"},
    {"teach", "taught", "teaches", "teaching"},
    {"advise", "advised", "advises", "advising"},
    {"mentor", "mentored", "mentors", "mentoring"},
    {"award", "awarded", "awards", "awarding"},
    {"win", "won", "wins", "winning"},
    {"receive", "received", "receives", "receiving"},
    {"attend", "attended", "attends", "attending"},
    {"graduate", "graduated", "graduates", "graduating"},
    {"work", "worked", "works", "working"},
    {"live", "lived", "lives", "living"},
    {"move", "moved", "moves", "moving"},
    {"travel", "traveled", "travels", "traveling"},
    {"bear", "bore", "bears", "bearing"},
    {"die", "died", "dies", "dying"},
    {"discover", "discovered", "discovers", "discovering"},
    {"invent", "invented", "invents", "inventing"},
    {"propose", "proposed", "proposes", "proposing"},
    {"prove", "proved", "proves", "proving"},
    {"investigate", "investigated", "investigates", "investigating"},
    {"research", "researched", "researches", "researching"},
    {"explore", "explored", "explores", "exploring"},
    {"chair", "chaired", "chairs", "chairing"},
    {"sponsor", "sponsored", "sponsors", "sponsoring"},
    {"fund", "funded", "funds", "funding"},
    {"support", "supported", "supports", "supporting"},
    {"collaborate", "collaborated", "collaborates", "collaborating"},
    {"partner", "partnered", "partners", "partnering"},
    {"merge", "merged", "merges", "merging"},
    {"buy", "bought", "buys", "buying"},
    {"sell", "sold", "sells", "selling"},
    {"build", "built", "builds", "building"},
    {"open", "opened", "opens", "opening"},
    {"close", "closed", "closes", "closing"},
    {"host", "hosted", "hosts", "hosting"},
    {"organize", "organized", "organizes", "organizing"},
    {"perform", "performed", "performs", "performing"},
    {"record", "recorded", "records", "recording"},
    {"release", "released", "releases", "releasing"},
    {"star", "starred", "stars", "starring"},
    {"play", "played", "plays", "playing"},
    {"coach", "coached", "coaches", "coaching"},
    {"govern", "governed", "governs", "governing"},
    {"represent", "represented", "represents", "representing"},
    {"serve", "served", "serves", "serving"},
    {"speak", "spoke", "speaks", "speaking"},
    {"announce", "announced", "announces", "announcing"},
    {"present", "presented", "presents", "presenting"},
    {"review", "reviewed", "reviews", "reviewing"},
    {"celebrate", "celebrated", "celebrates", "celebrating"},
    {"admire", "admired", "admires", "admiring"},
    {"describe", "described", "describes", "describing"},
    {"mention", "mentioned", "mentions", "mentioning"},
    {"criticize", "criticized", "criticizes", "criticizing"},
};

// Lemmas drawn on by the synthetic KB for predicate surfaces.
const std::vector<std::string_view> kPredicateVerbLemmas = {
    "study", "visit", "direct", "found", "establish", "write", "paint",
    "compose", "marry", "acquire", "publish", "produce", "lead", "manage",
    "own", "create", "design", "develop", "launch", "join", "leave",
    "teach", "advise", "mentor", "award", "win", "receive", "attend",
    "graduate", "work", "live", "move", "bear", "discover", "invent",
    "propose", "chair", "sponsor", "fund", "collaborate", "partner",
    "merge", "buy", "sell", "build", "host", "organize", "perform",
    "record", "release", "star", "play", "coach", "govern", "represent",
    "serve",
};

// Verbs that render real sentences but never alias a KB predicate; the
// corpus generator uses them for non-linkable relational phrases.
const std::vector<std::string_view> kNonKbVerbLemmas = {
    "travel", "die", "prove", "investigate", "research", "explore", "open",
    "close", "speak", "announce", "present", "review", "celebrate",
    "admire", "describe", "mention", "criticize",
};

const std::vector<std::string_view> kVerbParticles = {
    "at", "in", "with", "for", "to",
};

const std::vector<std::string_view> kCoordinatingConjunctions = {
    "and", "or",
};

const std::vector<std::string_view> kPrepositions = {
    "of", "on", "in", "at", "for", "from", "by", "with", "under", "over",
};

const std::vector<std::string_view> kConnectorPunctuation = {":", "-"};

const std::vector<std::string_view> kDeterminers = {
    "the", "a", "an", "this", "that", "its", "his", "her", "their",
};

const std::vector<std::string_view> kStopwords = {
    "the", "a", "an", "of", "on", "in", "at", "for", "from", "by", "with",
    "under", "over", "and", "or", "to", "as", "is", "are", "was", "were",
    "be", "been", "he", "she", "it", "they", "him", "her", "them", "his",
    "its", "their", "this", "that", "also", "more", "than", "during",
    "after", "before", "new", "first", "last", "year", "years",
};

const std::vector<std::string_view> kPronouns = {
    "he", "she", "it", "they", "him", "her", "them",
};

const std::vector<std::string_view> kPersonFirstNames = {
    "Adrian", "Beatrice", "Cedric", "Dalia", "Edmund", "Farah", "Gideon",
    "Helena", "Ivor", "Jasmine", "Kieran", "Lavinia", "Magnus", "Nadia",
    "Orson", "Petra", "Quentin", "Rosalind", "Silas", "Tamsin", "Ulric",
    "Verena", "Wendell", "Xenia", "Yorick", "Zelda", "Anselm", "Bronwyn",
    "Caspian", "Delphine", "Emeric", "Fiora", "Gareth", "Honora",
};

const std::vector<std::string_view> kPersonLastNames = {
    "Abernathy", "Blackwood", "Carmichael", "Delacroix", "Eastgate",
    "Fairbanks", "Greenhalgh", "Hawthorne", "Ingleby", "Jarnvik",
    "Kingsley", "Lockridge", "Montclair", "Northgate", "Oakhurst",
    "Pemberton", "Quillfeather", "Ravenswood", "Stanhope", "Thornbury",
    "Underhill", "Vanterpool", "Westbrook", "Yardley", "Ashdown",
    "Briarcliff", "Coldstream", "Dunmore", "Elsworth", "Farrow",
};

const std::vector<std::string_view> kOrganizationHeads = {
    "Meridian", "Vanguard", "Summit", "Pinnacle", "Horizon", "Keystone",
    "Beacon", "Crescent", "Northern", "Atlas", "Orion", "Polaris",
    "Sterling", "Granite", "Harbor", "Cascade", "Aurora", "Zenith",
    "Frontier", "Heritage",
};

const std::vector<std::string_view> kOrganizationSuffixes = {
    "Institute", "University", "Laboratories", "Corporation", "Foundation",
    "Society", "Academy", "College", "Consortium", "Council", "Museum",
    "Observatory", "Press",
};

const std::vector<std::string_view> kLocationNames = {
    "Ashford", "Brindlemere", "Caldwell", "Dunhaven", "Eastmoor",
    "Fernleigh", "Glenbrook", "Hartwell", "Inverdale", "Jutland",
    "Kestrel", "Larkspur", "Marrowgate", "Netherfield", "Oakvale",
    "Pinehurst", "Quarrydown", "Rosemont", "Silverlake", "Thistledown",
    "Umberton", "Vexley", "Wyndham", "Yarrowfield",
};

const std::vector<std::string_view> kLocationSuffixes = {
    "Bay", "Island", "Valley", "Heights", "Harbor", "Falls", "Ridge",
    "Plains", "Sound",
};

const std::vector<std::string_view> kWorkHeadNouns = {
    "Storm", "Voyage", "Garden", "Portrait", "Symphony", "Chronicle",
    "Ballad", "Mirror", "Lantern", "Crown", "Shadow", "River", "Winter",
    "Harvest", "Procession", "Elegy", "Dream", "Masquerade",
};

const std::vector<std::string_view> kTopicAdjectives = {
    "quantum", "statistical", "computational", "synthetic", "molecular",
    "cognitive", "distributed", "adaptive", "nonlinear", "stochastic",
    "semantic", "structural", "dynamic", "neural", "symbolic",
};

const std::vector<std::string_view> kTopicNouns = {
    "inference", "optimization", "linguistics", "chemistry", "robotics",
    "cartography", "economics", "epidemiology", "astronomy", "genomics",
    "logic", "topology", "rhetoric", "hydrology", "metallurgy",
};

const std::vector<std::string_view> kProductHeads = {
    "Falcon", "Comet", "Nimbus", "Quasar", "Vertex", "Spectra", "Pulsar",
    "Nova", "Titan", "Zephyr",
};

const std::vector<std::string_view> kEventHeads = {
    "Expo", "Summit", "Festival", "Symposium", "Congress", "Biennale",
    "Regatta", "Tournament",
};
// clang-format on

}  // namespace

const std::vector<VerbForms>& Verbs() { return kVerbs; }

const std::vector<std::string_view>& PredicateVerbLemmas() {
  return kPredicateVerbLemmas;
}

const std::vector<std::string_view>& NonKbVerbLemmas() {
  return kNonKbVerbLemmas;
}

const std::vector<std::string_view>& VerbParticles() { return kVerbParticles; }

const std::vector<std::string_view>& CoordinatingConjunctions() {
  return kCoordinatingConjunctions;
}

const std::vector<std::string_view>& Prepositions() { return kPrepositions; }

bool IsNumberWord(std::string_view word) { return IsAsciiNumber(word); }

const std::vector<std::string_view>& ConnectorPunctuation() {
  return kConnectorPunctuation;
}

const std::vector<std::string_view>& Determiners() { return kDeterminers; }

const std::vector<std::string_view>& Stopwords() { return kStopwords; }

const std::vector<std::string_view>& Pronouns() { return kPronouns; }

const std::vector<std::string_view>& PersonFirstNames() {
  return kPersonFirstNames;
}
const std::vector<std::string_view>& PersonLastNames() {
  return kPersonLastNames;
}
const std::vector<std::string_view>& OrganizationHeads() {
  return kOrganizationHeads;
}
const std::vector<std::string_view>& OrganizationSuffixes() {
  return kOrganizationSuffixes;
}
const std::vector<std::string_view>& LocationNames() { return kLocationNames; }
const std::vector<std::string_view>& LocationSuffixes() {
  return kLocationSuffixes;
}
const std::vector<std::string_view>& WorkHeadNouns() { return kWorkHeadNouns; }
const std::vector<std::string_view>& TopicAdjectives() {
  return kTopicAdjectives;
}
const std::vector<std::string_view>& TopicNouns() { return kTopicNouns; }
const std::vector<std::string_view>& ProductHeads() { return kProductHeads; }
const std::vector<std::string_view>& EventHeads() { return kEventHeads; }

const VerbForms* FindVerbByLemma(std::string_view lemma) {
  for (const VerbForms& v : kVerbs) {
    if (v.lemma == lemma) return &v;
  }
  return nullptr;
}

const VerbForms* FindVerbByAnyForm(std::string_view form) {
  for (const VerbForms& v : kVerbs) {
    if (v.lemma == form || v.past == form || v.third == form ||
        v.gerund == form) {
      return &v;
    }
  }
  return nullptr;
}

}  // namespace text
}  // namespace tenet
