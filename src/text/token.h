#ifndef TENET_TEXT_TOKEN_H_
#define TENET_TEXT_TOKEN_H_

#include <string>
#include <vector>

namespace tenet {
namespace text {

// One token of a tokenized document.
struct Token {
  std::string t;          // the token text, original casing
  int sentence = 0;       // 0-based sentence index
  int index = 0;          // 0-based position within the whole document
  bool is_punct = false;  // true for punctuation tokens (".", ":", ...)
};

// A tokenized document: flat token list plus sentence boundaries.
struct TokenizedDocument {
  std::vector<Token> tokens;
  /// sentence_begin[s] is the index (into tokens) of sentence s's first
  /// token; sentence_begin.size() is the number of sentences.
  std::vector<int> sentence_begin;

  int num_sentences() const { return static_cast<int>(sentence_begin.size()); }

  /// Token index one past the end of sentence `s`.
  int SentenceEnd(int s) const {
    return s + 1 < num_sentences() ? sentence_begin[s + 1]
                                   : static_cast<int>(tokens.size());
  }
};

}  // namespace text
}  // namespace tenet

#endif  // TENET_TEXT_TOKEN_H_
