#ifndef TENET_TEXT_FEATURES_H_
#define TENET_TEXT_FEATURES_H_

#include <optional>
#include <string>
#include <vector>

namespace tenet {
namespace text {

// The four linguistic feature classes of Sec. 5.1 used to join short-text
// mentions into long-text mentions.
enum class ConnectorKind {
  kConjunction,   // "Romeo and Juliet"
  kPreposition,   // "Storm on the Island"
  kNumber,        // "Apollo 11 mission"
  kPunctuation,   // "Jurassic World: Fallen Kingdom"
};

// A recognized connector between two adjacent short-text mentions.
struct Connector {
  ConnectorKind kind;
  /// Exact text joining the mentions, e.g. "of the" or ":".
  std::string joining_text;
};

/// Classifies the token gap between two adjacent short-text mentions.
/// Returns nullopt when the gap is not one of the pre-specified linguistic
/// features (then the mentions belong to different mention groups).
/// Recognized gaps: a coordinating conjunction; a preposition optionally
/// followed by a determiner ("of", "on the"); a single number; a single
/// connector punctuation mark.  Gaps longer than 2 tokens never connect.
std::optional<Connector> ClassifyConnector(
    const std::vector<std::string>& gap_tokens);

}  // namespace text
}  // namespace tenet

#endif  // TENET_TEXT_FEATURES_H_
