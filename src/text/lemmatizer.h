#ifndef TENET_TEXT_LEMMATIZER_H_
#define TENET_TEXT_LEMMATIZER_H_

#include <string>
#include <string_view>

namespace tenet {
namespace text {

// Rule + table-based verb lemmatizer (the NLTK WordNet-lemmatizer stand-in
// used on relational phrases, Sec. 6.1).  Irregular forms resolve through
// the wordlists verb table; unknown words fall back to suffix-stripping
// rules (-ies -> -y, -ed, -es, -s, -ing).  Always lower-cases.
std::string LemmatizeVerb(std::string_view word);

/// Lemmatizes a possibly multi-word relational phrase: the first word is
/// lemmatized as a verb, trailing particles are kept verbatim
/// ("worked at" -> "work at").
std::string LemmatizeRelationalPhrase(std::string_view phrase);

/// True when `word` (any inflection, case-insensitive) is a known verb.
bool IsKnownVerbForm(std::string_view word);

}  // namespace text
}  // namespace tenet

#endif  // TENET_TEXT_LEMMATIZER_H_
