#ifndef TENET_TEXT_EXTRACTION_H_
#define TENET_TEXT_EXTRACTION_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "kb/types.h"
#include "text/features.h"
#include "text/gazetteer.h"
#include "text/limits.h"
#include "text/token.h"

namespace tenet {
namespace text {

// A short-text mention (Definition 7): a minimal noun-phrase span that
// contains none of the pre-specified linguistic features.  Long-text
// variants are regenerated from these by the canopy machinery (Sec. 5.1).
struct ShortMention {
  std::string surface;
  /// NER type when the surface is known to the gazetteer; nullopt for fresh
  /// (potentially non-linkable) phrases.
  std::optional<kb::EntityType> type;
  int sentence = 0;
  int token_begin = 0;  // inclusive, document token index
  int token_end = 0;    // exclusive
};

// A relational phrase produced by the Open-IE-lite stage: a verb (plus an
// optional particle) connecting two noun phrases in one sentence.
struct ExtractedRelation {
  std::string lemma;  // lemmatized phrase, e.g. "work at"
  std::string raw;    // as it appeared, e.g. "worked at"
  int sentence = 0;
  int token_begin = 0;
  int token_end = 0;
};

// Output of the extraction pipeline over one document.
struct ExtractionResult {
  /// Short-text mentions in document order.
  std::vector<ShortMention> mentions;
  /// link_after[i] classifies the gap between mentions[i] and mentions[i+1]
  /// when the two are adjacent within a sentence and separated by exactly
  /// one linguistic feature; nullopt otherwise.  Size == mentions.size()
  /// (the last element is always nullopt).
  std::vector<std::optional<Connector>> link_after;
  /// Relational phrases in document order.
  std::vector<ExtractedRelation> relations;
};

// The linguistic pipeline of Sec. 3 Steps 1-2: tokenization, NER-style
// mention spotting (capitalized runs + gazetteer n-grams), pronoun
// coreference suppression, Open-IE-lite relational phrase extraction with
// lemmatization, and Sec. 5.1 feature-link detection.
class Extractor {
 public:
  /// `gazetteer` must outlive the Extractor; may not be null.
  explicit Extractor(const Gazetteer* gazetteer);

  ExtractionResult Extract(const TokenizedDocument& doc) const;

  /// Convenience: tokenizes then extracts.
  ExtractionResult ExtractFromText(std::string_view document_text) const;

  /// The guarded front door (DESIGN.md §13): enforces `limits` end to end —
  /// oversized documents are rejected with kInvalidArgument before any
  /// work, invalid UTF-8 is sanitized (or rejected, per
  /// `limits.sanitize_invalid_utf8`) so it never reaches the tokenizer or
  /// the lemmatizer's case fold, word runs and token counts are clipped in
  /// the tokenizer, and the mention/relation lists are truncated after
  /// extraction.  Carries the fault points "text/tokenize" and
  /// "text/extract" (observed as dependencies, like kb/alias_lookup).
  /// Every effect is counted into tenet_input_*_total and, when `report`
  /// is non-null, mirrored there for per-document accounting.
  Result<ExtractionResult> ExtractFromText(std::string_view document_text,
                                           const TextLimits& limits,
                                           TextGuardReport* report) const;

 private:
  const Gazetteer* gazetteer_;
};

}  // namespace text
}  // namespace tenet

#endif  // TENET_TEXT_EXTRACTION_H_
