#include "text/tokenizer.h"

#include <cctype>

namespace tenet {
namespace text {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '\'';
}

bool IsSentenceTerminator(char c) { return c == '.' || c == '!' || c == '?'; }

bool IsPunct(char c) {
  switch (c) {
    case '.':
    case ',':
    case ':':
    case ';':
    case '!':
    case '?':
    case '(':
    case ')':
    case '"':
    case '-':
      return true;
    default:
      return false;
  }
}

}  // namespace

TokenizedDocument Tokenize(std::string_view s) {
  TokenizedDocument doc;
  int sentence = 0;
  bool sentence_open = false;
  size_t i = 0;
  auto emit = [&](std::string token_text, bool is_punct) {
    if (!sentence_open) {
      doc.sentence_begin.push_back(static_cast<int>(doc.tokens.size()));
      sentence_open = true;
    }
    Token t;
    t.t = std::move(token_text);
    t.sentence = sentence;
    t.index = static_cast<int>(doc.tokens.size());
    t.is_punct = is_punct;
    doc.tokens.push_back(std::move(t));
  };

  while (i < s.size()) {
    char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsWordChar(c)) {
      size_t begin = i;
      while (i < s.size() &&
             (IsWordChar(s[i]) ||
              // keep intra-word hyphens: "co-author"
              (s[i] == '-' && i + 1 < s.size() && IsWordChar(s[i + 1]) &&
               i > begin))) {
        ++i;
      }
      emit(std::string(s.substr(begin, i - begin)), /*is_punct=*/false);
      continue;
    }
    if (IsPunct(c)) {
      emit(std::string(1, c), /*is_punct=*/true);
      ++i;
      if (IsSentenceTerminator(c) && sentence_open) {
        sentence_open = false;
        ++sentence;
      }
      continue;
    }
    // Unknown byte: skip.
    ++i;
  }
  return doc;
}

}  // namespace text
}  // namespace tenet
