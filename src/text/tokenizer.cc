#include "text/tokenizer.h"

#include <limits>

#include "common/string_util.h"
#include "common/utf8.h"

namespace tenet {
namespace text {
namespace {

bool IsWordChar(char c) { return IsAsciiAlnumChar(c) || c == '\''; }

bool IsSentenceTerminator(char c) { return c == '.' || c == '!' || c == '?'; }

bool IsPunct(char c) {
  switch (c) {
    case '.':
    case ',':
    case ':':
    case ';':
    case '!':
    case '?':
    case '(':
    case ')':
    case '"':
    case '-':
      return true;
    default:
      return false;
  }
}

// Width of the word-run step starting at s[i]: 1 for an ASCII word char,
// the sequence length for a valid multi-byte UTF-8 sequence, 1 for an
// intra-word hyphen whose right side is a word step, 0 if the run ends.
size_t WordStep(std::string_view s, size_t i, size_t begin) {
  const char c = s[i];
  if (IsWordChar(c)) return 1;
  if (static_cast<unsigned char>(c) >= 0x80) {
    const size_t len = Utf8SequenceLength(s.data() + i, s.size() - i);
    return len >= 2 ? len : 0;  // invalid byte ends the run
  }
  if (c == '-' && i > begin && i + 1 < s.size()) {
    // keep intra-word hyphens: "co-author"
    const char next = s[i + 1];
    if (IsWordChar(next)) return 1;
    if (static_cast<unsigned char>(next) >= 0x80 &&
        Utf8SequenceLength(s.data() + i + 1, s.size() - i - 1) >= 2) {
      return 1;
    }
  }
  return 0;
}

TokenizedDocument TokenizeImpl(std::string_view s, const TextLimits* limits,
                               TextGuardReport* report) {
  TokenizedDocument doc;
  const size_t max_token_bytes =
      limits != nullptr ? limits->max_token_bytes
                        : std::numeric_limits<size_t>::max();
  const int max_tokens = limits != nullptr ? limits->max_tokens
                                           : std::numeric_limits<int>::max();
  int sentence = 0;
  bool sentence_open = false;
  size_t i = 0;
  bool capped = false;
  auto emit = [&](std::string token_text, bool is_punct) {
    if (static_cast<int>(doc.tokens.size()) >= max_tokens) {
      capped = true;
      return false;
    }
    if (!sentence_open) {
      doc.sentence_begin.push_back(static_cast<int>(doc.tokens.size()));
      sentence_open = true;
    }
    Token t;
    t.t = std::move(token_text);
    t.sentence = sentence;
    t.index = static_cast<int>(doc.tokens.size());
    t.is_punct = is_punct;
    doc.tokens.push_back(std::move(t));
    return true;
  };

  while (i < s.size() && !capped) {
    char c = s[i];
    if (IsAsciiSpaceChar(c)) {
      ++i;
      continue;
    }
    size_t step = WordStep(s, i, i);
    if (step > 0) {
      const size_t begin = i;
      // `cut` is the largest step boundary within the token-byte budget;
      // clipping there never splits a UTF-8 sequence.
      size_t cut = begin;
      while (i < s.size() && (step = WordStep(s, i, begin)) > 0) {
        i += step;
        if (i - begin <= max_token_bytes) cut = i;
      }
      if (i - begin > max_token_bytes) {
        // Oversized run: emit the clipped head, drop the remainder.
        if (report != nullptr) ++report->truncated_tokens;
        if (cut > begin) {
          emit(std::string(s.substr(begin, cut - begin)), /*is_punct=*/false);
        }
      } else {
        emit(std::string(s.substr(begin, i - begin)), /*is_punct=*/false);
      }
      continue;
    }
    if (IsPunct(c)) {
      if (!emit(std::string(1, c), /*is_punct=*/true)) break;
      ++i;
      if (IsSentenceTerminator(c) && sentence_open) {
        sentence_open = false;
        ++sentence;
      }
      continue;
    }
    // Unknown byte (invalid UTF-8 outside a word run): skip.
    ++i;
  }
  if (capped && report != nullptr) report->token_cap_hit = true;
  return doc;
}

}  // namespace

TokenizedDocument Tokenize(std::string_view s) {
  return TokenizeImpl(s, nullptr, nullptr);
}

TokenizedDocument Tokenize(std::string_view s, const TextLimits& limits,
                           TextGuardReport* report) {
  return TokenizeImpl(s, &limits, report);
}

}  // namespace text
}  // namespace tenet
