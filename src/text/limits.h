#ifndef TENET_TEXT_LIMITS_H_
#define TENET_TEXT_LIMITS_H_

#include <cstddef>
#include <cstdint>

namespace tenet {
namespace text {

// Hostile-input guardrails for the text front door (DESIGN.md §13).
//
// Every limit has an explicit policy — reject with kInvalidArgument before
// any work is done, or truncate-and-annotate so the document still links —
// and every firing is observable: rejections count into
// tenet_input_rejected_total{reason} and truncations into
// tenet_input_truncated_total{reason}.  The defaults are deliberately
// generous: no document produced by the clean corpus generators comes
// anywhere near them, so enabling guardrails leaves clean-corpus PRF and
// golden edge lists byte-identical.
struct TextLimits {
  /// Documents larger than this are rejected outright (kInvalidArgument):
  /// past this point tokenization cost alone can blow a serving deadline.
  size_t max_document_bytes = 4u << 20;  // 4 MiB

  /// Word tokens longer than this are clipped at a UTF-8 sequence boundary
  /// and the remainder of the run is discarded (truncate-and-annotate).
  size_t max_token_bytes = 256;

  /// Tokenization stops after this many tokens; the tail of the document
  /// is dropped (truncate-and-annotate).
  int max_tokens = 100000;

  /// Short mentions kept per document; extraction truncates the mention
  /// list (and its feature links) past this, bounding the canopy feed.
  int max_mentions = 4096;

  /// Relational phrases kept per document.
  int max_relations = 4096;

  /// Ceiling on candidates fetched per mention.  The effective top-k is
  /// min(this, CoherenceGraphOptions::max_candidates_per_mention), so the
  /// default never changes the clean path; candidates matching beyond the
  /// effective cap are counted into
  /// tenet_input_truncated_total{reason="candidates"}.
  int max_candidates_per_mention = 64;

  /// When true (default), invalid UTF-8 bytes are replaced with spaces
  /// before tokenization (truncate-and-annotate: offsets preserved, the
  /// garbage becomes token boundaries).  When false, any invalid byte
  /// rejects the document with kInvalidArgument.
  bool sanitize_invalid_utf8 = true;
};

// What the guardrails did to one document.  Pipelines attach this to the
// request trace ("input_truncated" annotation) and the fuzz harness uses it
// to reconcile per-document effects against the tenet_input_*_total
// counters.
struct TextGuardReport {
  size_t invalid_utf8_bytes = 0;  // bytes replaced by the sanitizer
  int truncated_tokens = 0;       // word runs clipped at max_token_bytes
  bool token_cap_hit = false;     // document cut at max_tokens
  int dropped_mentions = 0;       // mentions past max_mentions
  int dropped_relations = 0;      // relations past max_relations
  int64_t truncated_candidates = 0;  // candidate postings past the top-k cap

  bool truncated() const {
    return invalid_utf8_bytes > 0 || truncated_tokens > 0 || token_cap_hit ||
           dropped_mentions > 0 || dropped_relations > 0 ||
           truncated_candidates > 0;
  }
};

// Closed label sets for the input guardrail metrics (cardinality rules of
// DESIGN.md §9: reasons are enums, never raw input).
enum class InputRejectReason {
  kDocumentBytes,   // document larger than max_document_bytes
  kInvalidUtf8,     // invalid UTF-8 with sanitize_invalid_utf8 == false
  kTokenizeFault,   // injected fault at text/tokenize
  kExtractFault,    // injected fault at text/extract
};

enum class InputTruncateReason {
  kInvalidUtf8,   // bytes replaced by the sanitizer
  kTokenBytes,    // word run clipped at max_token_bytes
  kTokenCount,    // document cut at max_tokens
  kMentions,      // mention list cut at max_mentions
  kRelations,     // relation list cut at max_relations
  kCandidates,    // candidate postings past the per-mention cap
};

/// Counts one rejected document into tenet_input_rejected_total{reason}.
void RecordInputRejected(InputRejectReason reason);

/// Counts `n` truncation events into tenet_input_truncated_total{reason}.
/// Each guardrail records its own firings at the enforcement site (guarded
/// extraction for utf8/token/mention/relation truncation, the pipeline's
/// candidate fetches for the candidate cap) so nothing is double counted.
void RecordInputTruncated(InputTruncateReason reason, int64_t n = 1);

}  // namespace text
}  // namespace tenet

#endif  // TENET_TEXT_LIMITS_H_
