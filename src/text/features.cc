#include "text/features.h"

#include <algorithm>

#include "common/string_util.h"
#include "text/wordlists.h"

namespace tenet {
namespace text {
namespace {

bool IsIn(const std::vector<std::string_view>& pool, std::string_view word) {
  std::string lower = AsciiToLower(word);
  return std::find(pool.begin(), pool.end(), lower) != pool.end();
}

}  // namespace

std::optional<Connector> ClassifyConnector(
    const std::vector<std::string>& gap) {
  if (gap.empty() || gap.size() > 2) return std::nullopt;

  if (gap.size() == 1) {
    const std::string& w = gap[0];
    if (IsIn(CoordinatingConjunctions(), w)) {
      return Connector{ConnectorKind::kConjunction, AsciiToLower(w)};
    }
    if (IsIn(Prepositions(), w)) {
      return Connector{ConnectorKind::kPreposition, AsciiToLower(w)};
    }
    if (IsNumberWord(w)) {
      return Connector{ConnectorKind::kNumber, w};
    }
    if (IsIn(ConnectorPunctuation(), w)) {
      return Connector{ConnectorKind::kPunctuation, w};
    }
    return std::nullopt;
  }

  // Two tokens: preposition + determiner ("on the", "of the").
  if (IsIn(Prepositions(), gap[0]) && IsIn(Determiners(), gap[1])) {
    return Connector{ConnectorKind::kPreposition,
                     AsciiToLower(gap[0]) + " " + AsciiToLower(gap[1])};
  }
  return std::nullopt;
}

}  // namespace text
}  // namespace tenet
