#ifndef TENET_TEXT_TOKENIZER_H_
#define TENET_TEXT_TOKENIZER_H_

#include <string_view>

#include "text/token.h"

namespace tenet {
namespace text {

// Rule-based tokenizer + sentence splitter (the NLTK stand-in).
//
// Tokens are maximal runs of letters/digits/apostrophes; the punctuation
// characters . , : ; ! ? ( ) " become single-character punctuation tokens.
// A hyphen between word characters stays inside the token ("co-author");
// a free-standing hyphen becomes punctuation.  Sentences end at . ! ?
TokenizedDocument Tokenize(std::string_view document_text);

}  // namespace text
}  // namespace tenet

#endif  // TENET_TEXT_TOKENIZER_H_
