#ifndef TENET_TEXT_TOKENIZER_H_
#define TENET_TEXT_TOKENIZER_H_

#include <string_view>

#include "text/limits.h"
#include "text/token.h"

namespace tenet {
namespace text {

// Rule-based tokenizer + sentence splitter (the NLTK stand-in).
//
// Tokens are maximal runs of ASCII letters/digits/apostrophes and
// well-formed multi-byte UTF-8 sequences; the punctuation characters
// . , : ; ! ? ( ) " become single-character punctuation tokens.  A hyphen
// between word characters stays inside the token ("co-author"); a
// free-standing hyphen becomes punctuation.  Sentences end at . ! ?
//
// Character classes are locale-independent (common/string_util.h ASCII
// classifiers, never <cctype>), so the tokenizer agrees with the
// ASCII-only case fold on every byte: a high-bit byte is either part of a
// valid UTF-8 sequence — kept intact inside one token, passed through the
// fold unchanged — or invalid, and skipped here exactly like the fold
// leaves it untouched.  The guarded pipeline sanitizes invalid bytes to
// spaces before tokenizing, so they never reach either layer.
TokenizedDocument Tokenize(std::string_view document_text);

// Limit-enforcing variant: word runs longer than `limits.max_token_bytes`
// are clipped at a UTF-8 sequence boundary (remainder of the run dropped)
// and tokenization stops after `limits.max_tokens` tokens.  Effects are
// recorded into `report` when non-null.  With default limits the output is
// identical to the unlimited overload for any document the clean
// generators produce.
TokenizedDocument Tokenize(std::string_view document_text,
                           const TextLimits& limits,
                           TextGuardReport* report);

}  // namespace text
}  // namespace tenet

#endif  // TENET_TEXT_TOKENIZER_H_
