// Umbrella header of the TENET library: joint entity and relation linking
// with coherence relaxation (Lin, Chen, Zhang — SIGMOD 2021).
//
// A typical embedding of the library:
//
//   #include "tenet.h"
//
//   // 1. Substrates: a knowledge base, concept embeddings, a gazetteer.
//   tenet::kb::KnowledgeBase kb = ...;            // or kb::LoadKnowledgeBase
//   tenet::embedding::EmbeddingStore vectors =
//       tenet::embedding::StructuralEmbeddingTrainer().Train(kb, rng);
//   tenet::text::Gazetteer gazetteer = tenet::kb::DeriveGazetteer(kb);
//
//   // 2. Link documents.
//   tenet::core::TenetPipeline pipeline(&kb, &vectors, &gazetteer);
//   auto result = pipeline.LinkDocument(text);
//
//   // 3. Optional: harvest KB-population candidates.
//   tenet::core::KbPopulator populator(&kb);
//
// Layering (each header is also individually includable):
//   common/     -> error model (Status/Result), Rng, logging, timers
//   obs/        -> metrics registry + per-request stage tracing (std-only;
//                  everything above may publish into it)
//   graph/      -> MST, matching, shortest paths, rooted trees
//   kb/         -> triple store + alias index + persistence + synthesis
//   embedding/  -> vector store + structural trainer
//   text/       -> tokenizer, lemmatizer, extractor, gazetteer
//   core/       -> the paper's algorithms and the end-to-end pipeline
//                  (LinkContext carries per-request deadline + trace)
//   baselines/  -> the comparison systems of the evaluation
//   datasets/   -> synthetic corpora with gold annotations
//   eval/       -> scoring and the experiment harness
#ifndef TENET_TENET_H_
#define TENET_TENET_H_

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/canopy.h"
#include "core/coherence_graph.h"
#include "core/disambiguator.h"
#include "core/link_context.h"
#include "core/mention.h"
#include "core/pipeline.h"
#include "core/population.h"
#include "core/tree_cover.h"
#include "core/tree_split.h"
#include "embedding/embedding_store.h"
#include "embedding/trainer.h"
#include "kb/io.h"
#include "kb/knowledge_base.h"
#include "kb/synthetic_kb.h"
#include "kb/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/extraction.h"
#include "text/gazetteer.h"

#endif  // TENET_TENET_H_
