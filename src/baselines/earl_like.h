#ifndef TENET_BASELINES_EARL_LIKE_H_
#define TENET_BASELINES_EARL_LIKE_H_

#include "baselines/common.h"
#include "baselines/linker.h"

namespace tenet {
namespace baselines {

// EARL [19] stand-in: joint entity and relation linking for question
// answering, formulated as connection density over the candidate graph
// (a GTSP relaxation).  Reproduced as the greedy chain heuristic: mentions
// are visited in document order and each picks the candidate minimizing a
// blend of hop distance to the previously chosen concept and local prior.
// Coherence is relaxed (only consecutive concepts interact) but isolated
// concepts cannot be recognized — every mention with candidates is linked.
class EarlLike : public Linker {
 public:
  explicit EarlLike(BaselineSubstrate substrate) : substrate_(substrate) {}

  std::string_view name() const override { return "EARL"; }
  bool has_disambiguation_stage() const override { return false; }

  Result<core::LinkingResult> LinkDocument(
      std::string_view document_text,
      const core::LinkContext& context = {}) const override;
  Result<core::LinkingResult> LinkMentionSet(
      core::MentionSet mentions,
      const core::LinkContext& context = {}) const override;

 private:
  BaselineSubstrate substrate_;
};

}  // namespace baselines
}  // namespace tenet

#endif  // TENET_BASELINES_EARL_LIKE_H_
