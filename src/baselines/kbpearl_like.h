#ifndef TENET_BASELINES_KBPEARL_LIKE_H_
#define TENET_BASELINES_KBPEARL_LIKE_H_

#include "baselines/common.h"
#include "baselines/linker.h"

namespace tenet {
namespace baselines {

// KBPearl [38] stand-in (near-neighbour mode, MinIE-based): joint entity
// and relation linking that relaxes global coherence by scoring each
// mention against a FIXED NUMBER of neighbouring mentions.  Iterative
// refinement: start from the local priors, then re-pick each candidate by
// prior + mean relatedness to the current concepts of the w nearest
// mentions.  Mentions whose best score stays below the confidence
// threshold are reported as new (non-linkable) concepts — KBPearl
// populates them into the KB.
struct KbPearlOptions {
  int window = 3;           // near-neighbour count
  int iterations = 2;       // refinement rounds
  double relatedness_weight = 1.0;
  double confidence_threshold = 0.55;
};

class KbPearlLike : public Linker {
 public:
  explicit KbPearlLike(BaselineSubstrate substrate,
                       KbPearlOptions options = {})
      : substrate_(substrate), options_(options) {}

  std::string_view name() const override { return "KBPearl"; }

  Result<core::LinkingResult> LinkDocument(
      std::string_view document_text,
      const core::LinkContext& context = {}) const override;
  Result<core::LinkingResult> LinkMentionSet(
      core::MentionSet mentions,
      const core::LinkContext& context = {}) const override;

 private:
  BaselineSubstrate substrate_;
  KbPearlOptions options_;
};

}  // namespace baselines
}  // namespace tenet

#endif  // TENET_BASELINES_KBPEARL_LIKE_H_
