#include "baselines/earl_like.h"

#include <limits>

#include "common/timer.h"
#include "text/extraction.h"

namespace tenet {
namespace baselines {

Result<core::LinkingResult> EarlLike::LinkDocument(
    std::string_view document_text,
    const core::LinkContext& /*context*/) const {
  WallTimer timer;
  text::Extractor extractor(substrate_.gazetteer);
  text::ExtractionResult extraction =
      extractor.ExtractFromText(document_text);
  double extract_ms = timer.ElapsedMillis();
  Result<core::LinkingResult> result = LinkMentionSet(
      BuildShortOnlyMentionSet(extraction, substrate_.gazetteer));
  if (result.ok()) result->timings.extract_ms = extract_ms;
  return result;
}

Result<core::LinkingResult> EarlLike::LinkMentionSet(
    core::MentionSet mentions,
    const core::LinkContext& /*context*/) const {
  WallTimer timer;
  core::CoherenceGraph cg = BuildGraph(substrate_, std::move(mentions));
  double graph_ms = timer.ElapsedMillis();

  timer.Restart();
  KbGraphRelatedness relatedness(ResolveView(substrate_));
  std::unordered_map<int, int> chosen;
  int previous_node = -1;
  for (int m = 0; m < cg.num_mentions(); ++m) {
    const std::vector<int>& candidates = cg.ConceptNodesOfMention(m);
    if (candidates.empty()) continue;
    int best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int node : candidates) {
      const core::CoherenceGraph::ConceptNode& cn = cg.concept_node(node);
      double local = 1.0 - cn.prior;
      double hop = 0.0;
      if (previous_node >= 0) {
        // EARL measures connection density in hops over the KB graph,
        // probed on demand (it has no embedding index).
        hop = 1.0 - relatedness.Relatedness(
                        cg.concept_node(previous_node).ref, cn.ref);
      }
      // Connection-density objective: hops dominate, priors break ties.
      double cost = 0.7 * hop + 0.3 * local;
      if (cost < best_cost) {
        best_cost = cost;
        best = node;
      }
    }
    chosen.emplace(m, best);
    previous_node = best;
  }
  core::LinkingResult result = AssembleResult(cg, chosen, {});
  result.timings.graph_ms = graph_ms;
  result.timings.disambiguate_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace baselines
}  // namespace tenet
