#ifndef TENET_BASELINES_LINKER_H_
#define TENET_BASELINES_LINKER_H_

#include <string_view>

#include "common/result.h"
#include "core/link_context.h"
#include "core/mention.h"
#include "core/pipeline.h"

namespace tenet {
namespace baselines {

// Common interface of every linking system in the evaluation (TENET and
// the five baselines of Sec. 6.1).  All systems run on the same substrates
// (KB, embeddings, gazetteer, extraction); what differs is the mention
// universe they consider and the disambiguation policy — exactly the
// quantities Tables 3/4 isolate.
//
// Per-request knobs (deadline, trace) travel in the core::LinkContext.
// Systems without budget support — the paper's baselines — ignore the
// context's deadline and run normally, which is exactly their published
// behaviour; TENET honours both the deadline and the trace.
class Linker {
 public:
  virtual ~Linker() = default;

  /// Display name used in the experiment tables.
  virtual std::string_view name() const = 0;

  /// False for systems without relation linking (QKBfly, MINTREE).
  virtual bool links_relations() const { return true; }

  /// False for systems without a dedicated disambiguation stage
  /// (Falcon, EARL), which the paper excludes from Figure 6(b).
  virtual bool has_disambiguation_stage() const { return true; }

  /// End-to-end linking of a raw document.  The serving layer uses the
  /// context both for per-request deadlines and to route requests straight
  /// down the degradation ladder (an already-expired deadline).
  virtual Result<core::LinkingResult> LinkDocument(
      std::string_view document_text,
      const core::LinkContext& context = {}) const = 0;

  /// Disambiguation with the mention universe given (Figure 6(b)).
  virtual Result<core::LinkingResult> LinkMentionSet(
      core::MentionSet mentions,
      const core::LinkContext& context = {}) const = 0;
};

}  // namespace baselines
}  // namespace tenet

#endif  // TENET_BASELINES_LINKER_H_
