#ifndef TENET_BASELINES_LINKER_H_
#define TENET_BASELINES_LINKER_H_

#include <string_view>

#include "common/deadline.h"
#include "common/result.h"
#include "core/mention.h"
#include "core/pipeline.h"

namespace tenet {
namespace baselines {

// Common interface of every linking system in the evaluation (TENET and
// the five baselines of Sec. 6.1).  All systems run on the same substrates
// (KB, embeddings, gazetteer, extraction); what differs is the mention
// universe they consider and the disambiguation policy — exactly the
// quantities Tables 3/4 isolate.
class Linker {
 public:
  virtual ~Linker() = default;

  /// Display name used in the experiment tables.
  virtual std::string_view name() const = 0;

  /// False for systems without relation linking (QKBfly, MINTREE).
  virtual bool links_relations() const { return true; }

  /// False for systems without a dedicated disambiguation stage
  /// (Falcon, EARL), which the paper excludes from Figure 6(b).
  virtual bool has_disambiguation_stage() const { return true; }

  /// End-to-end linking of a raw document.
  virtual Result<core::LinkingResult> LinkDocument(
      std::string_view document_text) const = 0;

  /// End-to-end linking under an explicit compute budget.  The serving
  /// layer uses this both for per-request deadlines and to route requests
  /// straight down the degradation ladder (an already-expired deadline).
  /// Systems without budget support — the paper's baselines — ignore the
  /// deadline and run normally, which is exactly their published behaviour.
  virtual Result<core::LinkingResult> LinkDocument(
      std::string_view document_text, Deadline deadline) const {
    (void)deadline;
    return LinkDocument(document_text);
  }

  /// Disambiguation with the mention universe given (Figure 6(b)).
  virtual Result<core::LinkingResult> LinkMentionSet(
      core::MentionSet mentions) const = 0;
};

}  // namespace baselines
}  // namespace tenet

#endif  // TENET_BASELINES_LINKER_H_
