#ifndef TENET_BASELINES_MINTREE_LIKE_H_
#define TENET_BASELINES_MINTREE_LIKE_H_

#include "baselines/common.h"
#include "baselines/linker.h"

namespace tenet {
namespace baselines {

// MINTREE [51] stand-in: pair-linking collective entity disambiguation
// with a minimum-spanning-tree objective ("two could be better than all").
// Candidate pairs are processed in ascending combined distance; linking a
// pair commits both mentions, and committed concepts can vouch for further
// neighbours — a Kruskal-style sweep over the full candidate graph, but
// without TENET's tree-cost bound, canopies, or isolated-concept handling:
// every mention with candidates ends up force-linked (top prior fallback).
// Entity disambiguation only; no relation linking (Table 4 omits it).
class MintreeLike : public Linker {
 public:
  explicit MintreeLike(BaselineSubstrate substrate)
      : substrate_(substrate) {}

  std::string_view name() const override { return "MINTREE"; }
  bool links_relations() const override { return false; }

  Result<core::LinkingResult> LinkDocument(
      std::string_view document_text,
      const core::LinkContext& context = {}) const override;
  Result<core::LinkingResult> LinkMentionSet(
      core::MentionSet mentions,
      const core::LinkContext& context = {}) const override;

 private:
  BaselineSubstrate substrate_;
};

}  // namespace baselines
}  // namespace tenet

#endif  // TENET_BASELINES_MINTREE_LIKE_H_
