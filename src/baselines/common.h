#ifndef TENET_BASELINES_COMMON_H_
#define TENET_BASELINES_COMMON_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/coherence_graph.h"
#include "core/pipeline.h"
#include "embedding/embedding_store.h"
#include "kb/kb_view.h"
#include "kb/knowledge_base.h"
#include "text/extraction.h"
#include "text/gazetteer.h"

namespace tenet {
namespace baselines {

// Shared substrate handles of all baseline linkers.  Either populate the
// flat pair (`kb` + `embeddings`) or set `view` directly; every consumer
// goes through ResolveView, so the systems run unchanged on a sharded
// substrate.
struct BaselineSubstrate {
  const kb::KnowledgeBase* kb = nullptr;
  const embedding::EmbeddingStore* embeddings = nullptr;
  const text::Gazetteer* gazetteer = nullptr;
  core::CoherenceGraphOptions graph_options;
  /// When set, wins over `kb`/`embeddings` (which may then be null).
  std::shared_ptr<const kb::KbView> view;
};

/// The substrate's KbView: `substrate.view` when set, else a FlatKbView
/// wrapping the kb/embeddings pair (which must then be non-null and
/// outlive the returned view).
std::shared_ptr<const kb::KbView> ResolveView(
    const BaselineSubstrate& substrate);

// Mention-universe policies of the baselines (none performs canopy-based
// joint selection — that is TENET's contribution):
//
/// Every short-text mention is its own singleton group; long-text variants
/// are never formed (Falcon, EARL, MINTREE).
core::MentionSet BuildShortOnlyMentionSet(
    const text::ExtractionResult& extraction,
    const text::Gazetteer* gazetteer);

/// Open-IE-style coarse chunking (QKBfly, KBPearl): both systems take
/// their noun phrases from Open IE tools, which emit maximal phrases — a
/// feature-linked run is always merged into one long mention, whether or
/// not the KB knows the merged surface.  This reproduces the "less
/// informative noun phrases" behaviour the paper blames for their
/// precision loss around isolated concepts (Sec. 6.2, Fig. 6(c)).
core::MentionSet BuildCoarseMentionSet(
    const text::ExtractionResult& extraction,
    const text::Gazetteer* gazetteer);

/// Runs the extractor and builds the coherence graph over `mentions`.
core::CoherenceGraph BuildGraph(const BaselineSubstrate& substrate,
                                core::MentionSet mentions);

/// Assembles a LinkingResult from per-mention decisions.  `chosen` maps
/// mention id -> concept node id of `cg`; `isolated` lists mentions the
/// system reports as new concepts.
core::LinkingResult AssembleResult(const core::CoherenceGraph& cg,
                                   const std::unordered_map<int, int>& chosen,
                                   const std::vector<int>& isolated);

/// The concept node with the highest prior for `mention`, or -1.
int TopPriorNode(const core::CoherenceGraph& cg, int mention);

// Semantic relatedness probed from the KB graph on demand (no precomputed
// index): overlap coefficient of the two concepts' entity neighborhoods,
// 1.0 for direct fact partners.  EARL's connection-density objective and
// KBPearl's document graph both consume this; each probe pays O(degree),
// unlike the O(1) lookups into the embedding index TENET and QKBfly use.
class KbGraphRelatedness {
 public:
  explicit KbGraphRelatedness(std::shared_ptr<const kb::KbView> view)
      : view_(std::move(view)) {}

  double Relatedness(kb::ConceptRef a, kb::ConceptRef b) const;

 private:
  std::shared_ptr<const kb::KbView> view_;
};

}  // namespace baselines
}  // namespace tenet

#endif  // TENET_BASELINES_COMMON_H_
