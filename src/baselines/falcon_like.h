#ifndef TENET_BASELINES_FALCON_LIKE_H_
#define TENET_BASELINES_FALCON_LIKE_H_

#include "baselines/common.h"
#include "baselines/linker.h"

namespace tenet {
namespace baselines {

// Falcon [56] stand-in: linguistic-morphology driven joint entity and
// relation linking WITHOUT any coherence assumption.  Every extracted
// phrase is linked independently to its most popular candidate (the local
// prior of Eqs. 1-2); there is no long-text mention recovery, no
// abstention, no context.  Consequently precision suffers on ambiguous
// mentions and recall on composite ones — the behaviour Table 3 shows.
class FalconLike : public Linker {
 public:
  explicit FalconLike(BaselineSubstrate substrate)
      : substrate_(substrate) {}

  std::string_view name() const override { return "Falcon"; }
  bool has_disambiguation_stage() const override { return false; }

  Result<core::LinkingResult> LinkDocument(
      std::string_view document_text,
      const core::LinkContext& context = {}) const override;
  Result<core::LinkingResult> LinkMentionSet(
      core::MentionSet mentions,
      const core::LinkContext& context = {}) const override;

 private:
  BaselineSubstrate substrate_;
};

}  // namespace baselines
}  // namespace tenet

#endif  // TENET_BASELINES_FALCON_LIKE_H_
