#ifndef TENET_BASELINES_TENET_LINKER_H_
#define TENET_BASELINES_TENET_LINKER_H_

#include "baselines/common.h"
#include "baselines/linker.h"
#include "core/pipeline.h"

namespace tenet {
namespace baselines {

// Adapter exposing the TENET pipeline through the common Linker interface
// used by the experiment harness.
class TenetLinker : public Linker {
 public:
  TenetLinker(BaselineSubstrate substrate, core::TenetOptions options = {})
      : pipeline_(ResolveView(substrate), substrate.gazetteer,
                  [&options, &substrate] {
                    options.graph = substrate.graph_options;
                    return options;
                  }()) {}

  std::string_view name() const override { return "TENET"; }

  Result<core::LinkingResult> LinkDocument(
      std::string_view document_text,
      const core::LinkContext& context = {}) const override {
    return pipeline_.LinkDocument(document_text, context);
  }

  Result<core::LinkingResult> LinkMentionSet(
      core::MentionSet mentions,
      const core::LinkContext& context = {}) const override {
    return pipeline_.LinkMentionSet(std::move(mentions), context);
  }

  const core::TenetPipeline& pipeline() const { return pipeline_; }

 private:
  core::TenetPipeline pipeline_;
};

}  // namespace baselines
}  // namespace tenet

#endif  // TENET_BASELINES_TENET_LINKER_H_
