#ifndef TENET_BASELINES_QKBFLY_LIKE_H_
#define TENET_BASELINES_QKBFLY_LIKE_H_

#include "baselines/common.h"
#include "baselines/linker.h"

namespace tenet {
namespace baselines {

// QKBfly [46] stand-in: on-the-fly knowledge base construction relying on
// the GLOBAL coherence assumption — every linked entity should be densely
// related to all others.  Reproduced as iterative global-coherence
// maximization with a strict admission threshold: a mention whose best
// candidate is not dense enough against the whole context is dropped
// (reported as a new concept).  This yields the high-precision /
// low-recall profile of Table 3.  Relation phrases are canonicalized but
// not linked to predicates (Sec. 6.1), so links_relations() is false.
struct QkbflyOptions {
  int iterations = 3;
  /// Absolute floor of the admission density.
  double density_floor = 0.30;
  /// Require the chosen concept to share a direct KB fact with another
  /// linked concept — QKBfly operates on KB subgraphs, and only the
  /// densely fact-connected core survives its on-the-fly construction.
  bool require_fact_support = true;
};

class QkbflyLike : public Linker {
 public:
  explicit QkbflyLike(BaselineSubstrate substrate, QkbflyOptions options = {})
      : substrate_(substrate), options_(options) {}

  std::string_view name() const override { return "QKBfly"; }
  bool links_relations() const override { return false; }

  Result<core::LinkingResult> LinkDocument(
      std::string_view document_text,
      const core::LinkContext& context = {}) const override;
  Result<core::LinkingResult> LinkMentionSet(
      core::MentionSet mentions,
      const core::LinkContext& context = {}) const override;

 private:
  BaselineSubstrate substrate_;
  QkbflyOptions options_;
};

}  // namespace baselines
}  // namespace tenet

#endif  // TENET_BASELINES_QKBFLY_LIKE_H_
