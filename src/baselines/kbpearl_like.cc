#include "baselines/kbpearl_like.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/timer.h"
#include "text/extraction.h"

namespace tenet {
namespace baselines {
Result<core::LinkingResult> KbPearlLike::LinkDocument(
    std::string_view document_text,
    const core::LinkContext& /*context*/) const {
  WallTimer timer;
  text::Extractor extractor(substrate_.gazetteer);
  text::ExtractionResult extraction =
      extractor.ExtractFromText(document_text);
  double extract_ms = timer.ElapsedMillis();
  Result<core::LinkingResult> result = LinkMentionSet(
      BuildCoarseMentionSet(extraction, substrate_.gazetteer));
  if (result.ok()) result->timings.extract_ms = extract_ms;
  return result;
}

Result<core::LinkingResult> KbPearlLike::LinkMentionSet(
    core::MentionSet mentions,
    const core::LinkContext& /*context*/) const {
  WallTimer timer;
  core::CoherenceGraph cg = BuildGraph(substrate_, std::move(mentions));
  double graph_ms = timer.ElapsedMillis();

  timer.Restart();
  KbGraphRelatedness kb_relatedness(ResolveView(substrate_));
  const int num_mentions = cg.num_mentions();

  // KBPearl first materializes its document graph: the pairwise KB-graph
  // relatedness of EVERY cross-mention candidate pair, probed from the KB
  // on demand.  This O((|M| k)^2) construction — unlike the O(1) lookups
  // of the pre-computed embedding index TENET and QKBfly use — is what
  // makes KBPearl the most length-sensitive system in Figure 7.
  const int num_concepts = cg.num_concept_nodes();
  std::unordered_map<uint64_t, double> pair_relatedness;
  pair_relatedness.reserve(
      static_cast<size_t>(num_concepts) * num_concepts / 2 + 1);
  for (int i = 0; i < num_concepts; ++i) {
    int u = num_mentions + i;
    for (int j = i + 1; j < num_concepts; ++j) {
      int v = num_mentions + j;
      if (cg.MentionOfNode(u) == cg.MentionOfNode(v)) continue;
      double r = kb_relatedness.Relatedness(cg.concept_node(u).ref,
                                            cg.concept_node(v).ref);
      pair_relatedness.emplace(
          (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v), r);
    }
  }
  auto relatedness_of = [&](int u, int v) {
    if (u > v) std::swap(u, v);
    auto it = pair_relatedness.find((static_cast<uint64_t>(u) << 32) |
                                    static_cast<uint64_t>(v));
    return it == pair_relatedness.end() ? 0.0 : it->second;
  };

  // Current assignment (node id per mention, -1 = none).
  std::vector<int> current(num_mentions, -1);
  for (int m = 0; m < num_mentions; ++m) {
    current[m] = TopPriorNode(cg, m);
  }

  // The near-neighbour attention: the w nearest mentions by document
  // position ("infers the linking of each mention based on a fixed number
  // of other mentions").  The window is FIXED — non-linkable neighbours
  // stay in it and contribute zero relatedness, diluting the confidence on
  // fresh-phrase-heavy documents; this rigidity is exactly the weakness
  // the paper ascribes to fixed attention counts.
  auto neighbors_of = [&](int m) {
    std::vector<int> out;
    for (int delta = 1;
         delta < num_mentions &&
         static_cast<int>(out.size()) < options_.window;
         ++delta) {
      if (m - delta >= 0) out.push_back(m - delta);
      if (static_cast<int>(out.size()) >= options_.window) break;
      if (m + delta < num_mentions) out.push_back(m + delta);
    }
    return out;
  };

  std::vector<double> best_score(num_mentions, 0.0);
  for (int iter = 0; iter < options_.iterations; ++iter) {
    for (int m = 0; m < num_mentions; ++m) {
      const std::vector<int>& candidates = cg.ConceptNodesOfMention(m);
      if (candidates.empty()) continue;
      std::vector<int> neighbors = neighbors_of(m);
      int best = -1;
      double best_s = -1.0;
      for (int node : candidates) {
        const core::CoherenceGraph::ConceptNode& cn = cg.concept_node(node);
        double mean_relatedness = 0.0;
        for (int n : neighbors) {
          if (current[n] >= 0) {
            mean_relatedness += relatedness_of(node, current[n]);
          }
        }
        if (!neighbors.empty()) {
          mean_relatedness /= static_cast<double>(neighbors.size());
        }
        double score =
            cn.prior + options_.relatedness_weight * mean_relatedness;
        if (score > best_s) {
          best_s = score;
          best = node;
        }
      }
      current[m] = best;
      best_score[m] = best_s;
    }
  }

  std::unordered_map<int, int> chosen;
  std::vector<int> isolated;
  for (int m = 0; m < num_mentions; ++m) {
    if (current[m] < 0) {
      isolated.push_back(m);  // no candidates: populated as a new concept
      continue;
    }
    if (best_score[m] < options_.confidence_threshold) {
      isolated.push_back(m);  // low confidence: reported non-linkable
      continue;
    }
    chosen.emplace(m, current[m]);
  }
  core::LinkingResult result = AssembleResult(cg, chosen, isolated);
  result.timings.graph_ms = graph_ms;
  result.timings.disambiguate_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace baselines
}  // namespace tenet
