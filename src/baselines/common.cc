#include "baselines/common.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace tenet {
namespace baselines {
namespace {

void SortUnique(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

// Appends a singleton-group noun mention, canonicalizing repeated surfaces.
void AddNounMention(core::MentionSet& set,
                    std::unordered_map<std::string, int>& by_surface,
                    const std::string& surface,
                    std::optional<kb::EntityType> type, int sentence) {
  std::string key = AsciiToLower(surface);
  auto it = by_surface.find(key);
  if (it != by_surface.end()) {
    core::Mention& existing = set.mentions[it->second];
    existing.sentences.push_back(sentence);
    SortUnique(existing.sentences);
    return;
  }
  core::Mention mention;
  mention.kind = core::Mention::Kind::kNoun;
  mention.surface = surface;
  mention.type = type;
  mention.sentences = {sentence};
  mention.group = set.num_groups();
  int id = set.num_mentions();
  set.mentions.push_back(std::move(mention));
  by_surface.emplace(std::move(key), id);
  core::MentionGroup group;
  group.members = {id};
  group.short_mentions = {id};
  group.canopies = {core::Canopy{{id}}};
  set.groups.push_back(std::move(group));
}

void AddRelationalMentions(core::MentionSet& set,
                           const text::ExtractionResult& extraction) {
  std::unordered_map<std::string, int> by_lemma;
  for (const text::ExtractedRelation& rel : extraction.relations) {
    auto it = by_lemma.find(rel.lemma);
    if (it != by_lemma.end()) {
      core::Mention& existing = set.mentions[it->second];
      existing.sentences.push_back(rel.sentence);
      SortUnique(existing.sentences);
      continue;
    }
    core::Mention mention;
    mention.kind = core::Mention::Kind::kRelational;
    mention.surface = rel.lemma;
    mention.sentences = {rel.sentence};
    mention.group = set.num_groups();
    int id = set.num_mentions();
    set.mentions.push_back(std::move(mention));
    by_lemma.emplace(rel.lemma, id);
    core::MentionGroup group;
    group.members = {id};
    group.short_mentions = {id};
    group.canopies = {core::Canopy{{id}}};
    set.groups.push_back(std::move(group));
  }
}

}  // namespace

core::MentionSet BuildShortOnlyMentionSet(
    const text::ExtractionResult& extraction,
    const text::Gazetteer* gazetteer) {
  (void)gazetteer;
  core::MentionSet set;
  std::unordered_map<std::string, int> by_surface;
  for (const text::ShortMention& sm : extraction.mentions) {
    AddNounMention(set, by_surface, sm.surface, sm.type, sm.sentence);
  }
  AddRelationalMentions(set, extraction);
  return set;
}

core::MentionSet BuildCoarseMentionSet(
    const text::ExtractionResult& extraction,
    const text::Gazetteer* gazetteer) {
  core::MentionSet set;
  std::unordered_map<std::string, int> by_surface;

  const int num_short = static_cast<int>(extraction.mentions.size());
  int begin = 0;
  while (begin < num_short) {
    int end = begin;
    while (end + 1 < num_short && extraction.link_after[end].has_value()) {
      ++end;
    }
    if (end == begin) {
      const text::ShortMention& sm = extraction.mentions[begin];
      AddNounMention(set, by_surface, sm.surface, sm.type, sm.sentence);
    } else {
      // Maximal Open-IE phrase: merge the whole run unconditionally.
      std::string surface = extraction.mentions[begin].surface;
      for (int i = begin; i < end; ++i) {
        const text::Connector& conn = *extraction.link_after[i];
        if (conn.kind == text::ConnectorKind::kPunctuation) {
          surface += conn.joining_text + " " +
                     extraction.mentions[i + 1].surface;
        } else {
          surface += " " + conn.joining_text + " " +
                     extraction.mentions[i + 1].surface;
        }
      }
      AddNounMention(set, by_surface, surface,
                     gazetteer->LookupType(surface),
                     extraction.mentions[begin].sentence);
    }
    begin = end + 1;
  }
  AddRelationalMentions(set, extraction);
  return set;
}

std::shared_ptr<const kb::KbView> ResolveView(
    const BaselineSubstrate& substrate) {
  if (substrate.view != nullptr) return substrate.view;
  return std::make_shared<kb::FlatKbView>(substrate.kb, substrate.embeddings);
}

core::CoherenceGraph BuildGraph(const BaselineSubstrate& substrate,
                                core::MentionSet mentions) {
  core::CoherenceGraphBuilder builder(ResolveView(substrate),
                                      substrate.graph_options);
  return builder.Build(std::move(mentions));
}

core::LinkingResult AssembleResult(
    const core::CoherenceGraph& cg,
    const std::unordered_map<int, int>& chosen,
    const std::vector<int>& isolated) {
  core::LinkingResult result;
  for (const auto& [mention_id, node] : chosen) {
    const core::CoherenceGraph::ConceptNode& cn = cg.concept_node(node);
    core::LinkedConcept link;
    link.mention_id = mention_id;
    link.surface = cg.mentions().mention(mention_id).surface;
    link.kind = cg.mentions().mention(mention_id).kind;
    link.concept_ref = cn.ref;
    link.prior = cn.prior;
    result.links.push_back(std::move(link));
    result.selected_mentions.push_back(mention_id);
  }
  std::sort(result.links.begin(), result.links.end(),
            [](const core::LinkedConcept& a, const core::LinkedConcept& b) {
              return a.mention_id < b.mention_id;
            });
  result.isolated_mentions = isolated;
  std::sort(result.isolated_mentions.begin(),
            result.isolated_mentions.end());
  for (int m : result.isolated_mentions) {
    result.selected_mentions.push_back(m);
  }
  std::sort(result.selected_mentions.begin(),
            result.selected_mentions.end());
  result.mentions = cg.mentions();
  return result;
}

namespace {

// Recomputed per call on purpose: this models the per-query KB probing
// cost of systems without a relatedness index.
std::unordered_set<kb::EntityId> KbNeighborhood(const kb::KbView& view,
                                                kb::ConceptRef ref) {
  std::unordered_set<kb::EntityId> out;
  if (ref.is_entity()) {
    for (kb::EntityId n : view.NeighborEntities(ref.id)) out.insert(n);
  } else {
    view.VisitFactsOfPredicate(
        ref.id, [&out](int64_t /*fact_id*/, const kb::Triple& t) {
          out.insert(t.subject);
          if (t.object_is_entity) out.insert(t.object_entity);
          return true;
        });
  }
  return out;
}

}  // namespace

double KbGraphRelatedness::Relatedness(kb::ConceptRef a,
                                       kb::ConceptRef b) const {
  std::unordered_set<kb::EntityId> na = KbNeighborhood(*view_, a);
  std::unordered_set<kb::EntityId> nb = KbNeighborhood(*view_, b);
  if (a.is_entity() && nb.count(a.id) > 0) return 1.0;
  if (b.is_entity() && na.count(b.id) > 0) return 1.0;
  if (na.empty() || nb.empty()) return 0.0;
  const std::unordered_set<kb::EntityId>& small =
      na.size() <= nb.size() ? na : nb;
  const std::unordered_set<kb::EntityId>& large =
      na.size() <= nb.size() ? nb : na;
  int overlap = 0;
  for (kb::EntityId e : small) overlap += large.count(e) > 0 ? 1 : 0;
  return static_cast<double>(overlap) / static_cast<double>(small.size());
}

int TopPriorNode(const core::CoherenceGraph& cg, int mention) {
  int best = -1;
  double best_prior = -1.0;
  for (int node : cg.ConceptNodesOfMention(mention)) {
    double prior = cg.concept_node(node).prior;
    if (prior > best_prior) {
      best_prior = prior;
      best = node;
    }
  }
  return best;
}

}  // namespace baselines
}  // namespace tenet
