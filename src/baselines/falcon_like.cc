#include "baselines/falcon_like.h"

#include "common/timer.h"
#include "text/extraction.h"

namespace tenet {
namespace baselines {

Result<core::LinkingResult> FalconLike::LinkDocument(
    std::string_view document_text,
    const core::LinkContext& /*context*/) const {
  WallTimer timer;
  text::Extractor extractor(substrate_.gazetteer);
  text::ExtractionResult extraction =
      extractor.ExtractFromText(document_text);
  double extract_ms = timer.ElapsedMillis();
  core::MentionSet mentions =
      BuildShortOnlyMentionSet(extraction, substrate_.gazetteer);
  // Falcon is purely morphology-driven: it consults no NER type system, so
  // candidates are drawn across all entity types.
  for (core::Mention& mention : mentions.mentions) {
    mention.type = std::nullopt;
  }
  Result<core::LinkingResult> result = LinkMentionSet(std::move(mentions));
  if (result.ok()) result->timings.extract_ms = extract_ms;
  return result;
}

Result<core::LinkingResult> FalconLike::LinkMentionSet(
    core::MentionSet mentions,
    const core::LinkContext& /*context*/) const {
  WallTimer timer;
  core::CoherenceGraph cg = BuildGraph(substrate_, std::move(mentions));
  double graph_ms = timer.ElapsedMillis();

  timer.Restart();
  std::unordered_map<int, int> chosen;
  for (int m = 0; m < cg.num_mentions(); ++m) {
    int node = TopPriorNode(cg, m);
    if (node >= 0) chosen.emplace(m, node);
  }
  core::LinkingResult result = AssembleResult(cg, chosen, {});
  result.timings.graph_ms = graph_ms;
  result.timings.disambiguate_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace baselines
}  // namespace tenet
