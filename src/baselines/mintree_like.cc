#include "baselines/mintree_like.h"

#include <algorithm>
#include <unordered_set>

#include "common/timer.h"
#include "text/extraction.h"

namespace tenet {
namespace baselines {

Result<core::LinkingResult> MintreeLike::LinkDocument(
    std::string_view document_text,
    const core::LinkContext& /*context*/) const {
  WallTimer timer;
  // The paper feeds MINTREE with TENET's extraction (Sec. 6.1); the short
  // mentions are its input mention set.
  text::Extractor extractor(substrate_.gazetteer);
  text::ExtractionResult extraction =
      extractor.ExtractFromText(document_text);
  double extract_ms = timer.ElapsedMillis();
  Result<core::LinkingResult> result = LinkMentionSet(
      BuildShortOnlyMentionSet(extraction, substrate_.gazetteer));
  if (result.ok()) result->timings.extract_ms = extract_ms;
  return result;
}

Result<core::LinkingResult> MintreeLike::LinkMentionSet(
    core::MentionSet mentions,
    const core::LinkContext& /*context*/) const {
  WallTimer timer;
  std::shared_ptr<const kb::KbView> view = ResolveView(substrate_);
  core::CoherenceGraph cg = BuildGraph(substrate_, std::move(mentions));
  double graph_ms = timer.ElapsedMillis();

  timer.Restart();
  const int num_mentions = cg.num_mentions();
  std::vector<int> noun_mentions;
  for (int m = 0; m < num_mentions; ++m) {
    if (cg.mentions().mention(m).is_noun()) noun_mentions.push_back(m);
  }

  // Pair-linking sweep over all cross-mention candidate pairs.
  struct Pair {
    int u;
    int v;
    double weight;
  };
  std::vector<Pair> pairs;
  for (size_t i = 0; i < noun_mentions.size(); ++i) {
    for (int u : cg.ConceptNodesOfMention(noun_mentions[i])) {
      for (size_t j = i + 1; j < noun_mentions.size(); ++j) {
        for (int v : cg.ConceptNodesOfMention(noun_mentions[j])) {
          double relatedness = view->Cosine(cg.concept_node(u).ref,
                                            cg.concept_node(v).ref);
          // Pair weight: the MST objective is dominated by the semantic
          // distance; local confidence only breaks ties (Phan et al.'s
          // tree weight is built from relatedness edges).
          double weight = (1.0 - relatedness) +
                          0.15 * (1.0 - cg.concept_node(u).prior) +
                          0.15 * (1.0 - cg.concept_node(v).prior);
          pairs.push_back(Pair{u, v, weight});
        }
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });

  std::unordered_map<int, int> chosen;
  std::unordered_set<int> chosen_nodes;
  for (const Pair& pair : pairs) {
    int mu = cg.MentionOfNode(pair.u);
    int mv = cg.MentionOfNode(pair.v);
    bool u_linked = chosen.count(mu) > 0;
    bool v_linked = chosen.count(mv) > 0;
    if (!u_linked && !v_linked) {
      chosen.emplace(mu, pair.u);
      chosen.emplace(mv, pair.v);
      chosen_nodes.insert(pair.u);
      chosen_nodes.insert(pair.v);
    } else if (chosen_nodes.count(pair.u) > 0 && !v_linked) {
      chosen.emplace(mv, pair.v);
      chosen_nodes.insert(pair.v);
    } else if (chosen_nodes.count(pair.v) > 0 && !u_linked) {
      chosen.emplace(mu, pair.u);
      chosen_nodes.insert(pair.u);
    }
    if (chosen.size() == noun_mentions.size()) break;
  }
  // Force-link leftovers (MINTREE cannot abstain).
  for (int m : noun_mentions) {
    if (chosen.count(m) > 0) continue;
    int node = TopPriorNode(cg, m);
    if (node >= 0) chosen.emplace(m, node);
  }
  core::LinkingResult result = AssembleResult(cg, chosen, {});
  result.timings.graph_ms = graph_ms;
  result.timings.disambiguate_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace baselines
}  // namespace tenet
