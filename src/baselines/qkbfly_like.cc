#include "baselines/qkbfly_like.h"

#include <algorithm>

#include "common/timer.h"
#include "text/extraction.h"

namespace tenet {
namespace baselines {

Result<core::LinkingResult> QkbflyLike::LinkDocument(
    std::string_view document_text,
    const core::LinkContext& /*context*/) const {
  WallTimer timer;
  text::Extractor extractor(substrate_.gazetteer);
  text::ExtractionResult extraction =
      extractor.ExtractFromText(document_text);
  double extract_ms = timer.ElapsedMillis();
  Result<core::LinkingResult> result = LinkMentionSet(
      BuildCoarseMentionSet(extraction, substrate_.gazetteer));
  if (result.ok()) result->timings.extract_ms = extract_ms;
  return result;
}

Result<core::LinkingResult> QkbflyLike::LinkMentionSet(
    core::MentionSet mentions,
    const core::LinkContext& /*context*/) const {
  WallTimer timer;
  std::shared_ptr<const kb::KbView> view = ResolveView(substrate_);
  core::CoherenceGraph cg = BuildGraph(substrate_, std::move(mentions));
  double graph_ms = timer.ElapsedMillis();

  timer.Restart();
  const int num_mentions = cg.num_mentions();
  // Noun mentions only; relations are not linked by QKBfly.
  std::vector<int> noun_mentions;
  for (int m = 0; m < num_mentions; ++m) {
    if (cg.mentions().mention(m).is_noun()) noun_mentions.push_back(m);
  }

  std::vector<int> current(num_mentions, -1);
  for (int m : noun_mentions) current[m] = TopPriorNode(cg, m);

  // Mean cosine of `node` against the current concepts of the other
  // mentions (the global density objective).
  auto density = [&](int node, int self) {
    double sum = 0.0;
    int count = 0;
    for (int other : noun_mentions) {
      if (other == self || current[other] < 0) continue;
      sum += view->Cosine(cg.concept_node(node).ref,
                          cg.concept_node(current[other]).ref);
      ++count;
    }
    return count == 0 ? 0.0 : sum / count;
  };

  for (int iter = 0; iter < options_.iterations; ++iter) {
    for (int m : noun_mentions) {
      const std::vector<int>& candidates = cg.ConceptNodesOfMention(m);
      if (candidates.empty()) continue;
      int best = -1;
      double best_d = -2.0;
      for (int node : candidates) {
        // Density with a small prior tie-break.
        double d = density(node, m) + 0.05 * cg.concept_node(node).prior;
        if (d > best_d) {
          best_d = d;
          best = node;
        }
      }
      current[m] = best;
    }
  }

  // Global admission (the failure mode of dense coherence on documents
  // with isolated concepts, Fig. 6(c)): a concept survives only when it is
  // embedded densely enough AND — QKBfly constructs its KB on the fly from
  // KB subgraphs — shares a direct fact with another selected concept.
  // Sparse-but-correct concepts are dropped together with the genuinely
  // wrong ones, which is why QKBfly reports few entities (low recall).
  auto fact_supported = [&](int m) {
    if (!options_.require_fact_support) return true;
    if (!cg.concept_node(current[m]).ref.is_entity()) return false;
    kb::EntityId self = cg.concept_node(current[m]).ref.id;
    bool supported = false;
    view->VisitFactsOfEntity(
        self, [&](int64_t /*fact_id*/, const kb::Triple& t) {
          if (!t.object_is_entity) return true;
          kb::EntityId other =
              t.subject == self ? t.object_entity : t.subject;
          for (int n : noun_mentions) {
            if (n == m || current[n] < 0) continue;
            const kb::ConceptRef& ref = cg.concept_node(current[n]).ref;
            if (ref.is_entity() && ref.id == other) {
              supported = true;
              return false;  // found a vouching fact; stop the walk
            }
          }
          return true;
        });
    return supported;
  };
  std::unordered_map<int, int> chosen;
  std::vector<int> isolated;
  for (int m : noun_mentions) {
    if (current[m] < 0) {
      isolated.push_back(m);
      continue;
    }
    if (density(current[m], m) < options_.density_floor ||
        !fact_supported(m)) {
      isolated.push_back(m);
      continue;
    }
    chosen.emplace(m, current[m]);
  }
  core::LinkingResult result = AssembleResult(cg, chosen, isolated);
  result.timings.graph_ms = graph_ms;
  result.timings.disambiguate_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace baselines
}  // namespace tenet
