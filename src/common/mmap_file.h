#ifndef TENET_COMMON_MMAP_FILE_H_
#define TENET_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace tenet {

// A read-only view of a whole file, zero-copy when the platform has mmap
// and transparently buffered otherwise — the loading substrate of the
// TENETKB2 snapshot path (the paper memory-maps its PBG vector array the
// same way, Sec. 6.1: pay the page-in cost lazily, never a parse cost).
//
// The two modes expose one contract: bytes() is stable for the lifetime of
// the object, the file is never written through, and Open() fails with a
// Status instead of aborting.  zero_copy() reports which mode was taken so
// observability can count mapped bytes honestly.
class MmapFile {
 public:
  /// Maps (or, with `prefer_mmap` false / no mmap support, reads) `path`.
  /// NotFound when the file cannot be opened; Internal on map/read errors.
  /// Empty files yield an empty, valid view.
  static Result<MmapFile> Open(const std::string& path,
                               bool prefer_mmap = true);

  MmapFile() = default;
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;

  std::span<const std::byte> bytes() const {
    return std::span<const std::byte>(data_, size_);
  }
  size_t size() const { return size_; }

  /// True when bytes() is a live mapping (no heap copy was made).
  bool zero_copy() const { return mapped_; }

 private:
  void Release();

  const std::byte* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;           // data_ came from mmap, munmap on release
  std::vector<std::byte> owned_;  // buffered fallback storage
};

}  // namespace tenet

#endif  // TENET_COMMON_MMAP_FILE_H_
