#ifndef TENET_COMMON_STATUS_H_
#define TENET_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tenet {

// Canonical error space, modelled after the error-code conventions used by
// large C++ database libraries (RocksDB, Arrow): a small closed set of codes
// plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  // Algorithm 1 returns a dedicated "failure warning" when the tree-cost
  // bound B is too small (the graph disconnects or matching fails).  We give
  // that condition its own code so callers can retry with a larger bound.
  kBoundTooSmall,
  // A compute budget (Deadline) ran out before the operation finished.
  // Retrying without a larger budget cannot help; callers degrade instead
  // (see the pipeline's degradation ladder).
  kDeadlineExceeded,
  // Unrecoverable corruption or loss of persisted data (truncated or
  // malformed KB/embedding files, non-finite payloads).
  kDataLoss,
  // A shared capacity limit is exhausted (serving queue full, admission
  // shed, retry budget drained).  The work was refused before it ran, so
  // the caller may safely resubmit once load subsides.
  kResourceExhausted,
};

/// Returns the canonical lower_snake_case name of `code` (e.g. "not_found").
std::string_view StatusCodeToString(StatusCode code);

// A Status describes the outcome of an operation that can fail.  This
// codebase does not use exceptions (see DESIGN.md); fallible functions return
// Status or Result<T>.  Status is cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status BoundTooSmall(std::string msg) {
    return Status(StatusCode::kBoundTooSmall, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True when this status carries Algorithm 1's failure warning.
  bool IsBoundTooSmall() const { return code_ == StatusCode::kBoundTooSmall; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// Renders "ok" or "<code>: <message>" for logs and test output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace tenet

// Propagates a non-OK Status to the caller; evaluates `expr` exactly once.
#define TENET_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::tenet::Status _tenet_status = (expr);        \
    if (!_tenet_status.ok()) return _tenet_status; \
  } while (false)

#endif  // TENET_COMMON_STATUS_H_
