#ifndef TENET_COMMON_CHECKSUM_H_
#define TENET_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace tenet {

/// FNV-1a over `size` bytes — the checksum every TENET container format
/// uses (TENETKB2 section tables, TENETDELTA1 records).  Not
/// cryptographic; it detects torn writes and bit rot, which is all the
/// loaders ask of it.
inline uint64_t Fnv1a64(const void* data, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace tenet

#endif  // TENET_COMMON_CHECKSUM_H_
