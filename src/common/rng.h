#ifndef TENET_COMMON_RNG_H_
#define TENET_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace tenet {

// Deterministic pseudo-random number generator (xoshiro256** seeded through
// splitmix64).  Every stochastic component in this codebase — synthetic KB
// generation, corpus rendering, property tests — draws from an explicitly
// seeded Rng so that experiments are reproducible bit-for-bit across runs
// and platforms, which std::default_random_engine does not guarantee.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit draw.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBool(double p);

  /// Standard normal draw (Box–Muller, deterministic).
  double NextGaussian();

  /// Zipf-distributed rank in [0, n) with exponent `s`; rank 0 is the most
  /// popular.  Used for alias popularity priors.
  int64_t NextZipf(int64_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextUint64(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Picks a uniformly random element; `items` must be non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    TENET_CHECK(!items.empty());
    return items[NextUint64(items.size())];
  }

  /// Derives an independent child generator; children with distinct labels
  /// produce decorrelated streams from the same parent seed.
  Rng Fork(uint64_t label);

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace tenet

#endif  // TENET_COMMON_RNG_H_
