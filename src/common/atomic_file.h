#ifndef TENET_COMMON_ATOMIC_FILE_H_
#define TENET_COMMON_ATOMIC_FILE_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace tenet {

// Crash-safe file replacement: the durability primitive under every TENET
// container writer (TENETKB2 / TENETEMB1 snapshots, TENETDELTA1 segments).
//
// The bytes land in `<path>.tmp` first, are fsynced, and only then rename
// over `path`; the parent directory is fsynced after the rename so the new
// directory entry itself is durable.  A crash — or an injected fault — at
// any point leaves either the old file intact or no file at all, never a
// torn `path`.  Stale `<path>.tmp` debris from a previous crash is
// harmless (loaders never look at it) and is overwritten by the next
// write.
//
// Not safe against two writers racing on the same path (they would share
// the temp name); the callers serialize writes per path.
Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size);

}  // namespace tenet

#endif  // TENET_COMMON_ATOMIC_FILE_H_
