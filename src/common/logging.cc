#include "common/logging.h"

namespace tenet {
namespace internal_logging {
namespace {

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

LogSeverity g_min_severity = LogSeverity::kWarning;

}  // namespace

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    if (severity_ < g_min_severity) std::cerr << stream_.str() << std::endl;
    std::abort();
  }
}

LogSeverity SetMinLogSeverity(LogSeverity severity) {
  LogSeverity previous = g_min_severity;
  g_min_severity = severity;
  return previous;
}

LogSeverity MinLogSeverity() { return g_min_severity; }

}  // namespace internal_logging
}  // namespace tenet
