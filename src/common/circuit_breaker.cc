#include "common/circuit_breaker.h"

#include <utility>

#include "common/logging.h"

namespace tenet {

std::string_view BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(std::string name, CircuitBreakerOptions options)
    : name_(std::move(name)), options_(options) {
  TENET_CHECK_GT(options_.window_size, 0);
  TENET_CHECK_GT(options_.min_samples, 0);
  TENET_CHECK_GT(options_.failure_threshold, 0.0);
  TENET_CHECK_GT(options_.half_open_probes, 0);
  TENET_CHECK_GT(options_.half_open_successes, 0);
  window_.assign(static_cast<size_t>(options_.window_size), 0);

  obs::MetricsRegistry* registry = options_.metrics != nullptr
                                       ? options_.metrics
                                       : obs::MetricsRegistry::Default();
  const std::string dependency = obs::LabelPair("dependency", name_);
  constexpr const char* kTransitionsHelp =
      "Circuit breaker state transitions, by dependency and target state.";
  for (BreakerState to : {BreakerState::kClosed, BreakerState::kOpen,
                          BreakerState::kHalfOpen}) {
    transitions_to_[static_cast<int>(to)] = registry->GetCounter(
        "tenet_breaker_transitions_total", kTransitionsHelp,
        dependency + "," +
            obs::LabelPair("to", BreakerStateToString(to)));
  }
  state_gauge_ = registry->GetGauge(
      "tenet_breaker_state",
      "Current breaker state per dependency (0 closed, 1 open, 2 half_open).",
      dependency);
  state_gauge_->Set(static_cast<double>(state_));
}

void CircuitBreaker::RecordTransitionLocked(BreakerState to) {
  transitions_to_[static_cast<int>(to)]->Increment();
  state_gauge_->Set(static_cast<double>(to));
}

double CircuitBreaker::WindowFailureRateLocked() const {
  return window_count_ == 0
             ? 0.0
             : static_cast<double>(window_failures_) / window_count_;
}

void CircuitBreaker::TripLocked() {
  state_ = BreakerState::kOpen;
  opened_at_ = Clock::now();
  ++stats_.trips;
  RecordTransitionLocked(BreakerState::kOpen);
  // A fresh window for the next closed period: stale outage-era outcomes
  // must not instantly re-trip a breaker that just recovered.
  window_.assign(window_.size(), 0);
  window_next_ = 0;
  window_count_ = 0;
  window_failures_ = 0;
  probes_left_ = 0;
  success_streak_ = 0;
}

void CircuitBreaker::CloseLocked() {
  state_ = BreakerState::kClosed;
  ++stats_.closes;
  RecordTransitionLocked(BreakerState::kClosed);
  probes_left_ = 0;
  success_streak_ = 0;
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      double elapsed_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - opened_at_)
              .count();
      if (elapsed_ms < options_.open_cooldown_ms) {
        ++stats_.rejected;
        return false;
      }
      state_ = BreakerState::kHalfOpen;
      RecordTransitionLocked(BreakerState::kHalfOpen);
      probes_left_ = options_.half_open_probes;
      success_streak_ = 0;
      [[fallthrough]];
    }
    case BreakerState::kHalfOpen:
      if (probes_left_ > 0) {
        --probes_left_;
        return true;
      }
      ++stats_.rejected;
      return false;
  }
  return true;
}

void CircuitBreaker::RecordOutcome(bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.outcomes;
  if (!ok) ++stats_.failures;
  switch (state_) {
    case BreakerState::kOpen:
      // No requests of ours are flowing (observations here come from the
      // degraded tier touching the same dependency); recovery is probed
      // via half-open, not inferred passively.
      break;
    case BreakerState::kClosed: {
      uint8_t& slot = window_[static_cast<size_t>(window_next_)];
      if (window_count_ == options_.window_size) {
        window_failures_ -= slot;
      } else {
        ++window_count_;
      }
      slot = ok ? 0 : 1;
      window_failures_ += slot;
      window_next_ = (window_next_ + 1) % options_.window_size;
      if (window_count_ >= options_.min_samples &&
          WindowFailureRateLocked() >= options_.failure_threshold) {
        TripLocked();
      }
      break;
    }
    case BreakerState::kHalfOpen:
      if (!ok) {
        TripLocked();
        break;
      }
      ++success_streak_;
      if (success_streak_ >= options_.half_open_successes) {
        CloseLocked();
      } else if (probes_left_ < options_.half_open_probes) {
        // A healthy probe outcome replenishes the probe allowance so that
        // low-volume dependencies (one observation per request) can still
        // accumulate the streak needed to close.
        ++probes_left_;
      }
      break;
  }
}

void CircuitBreaker::ReturnProbe() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen &&
      probes_left_ < options_.half_open_probes) {
    ++probes_left_;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

CircuitBreaker::Stats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

RetryBudget::RetryBudget() : RetryBudget(Options{}) {}

RetryBudget::RetryBudget(Options options)
    : options_(options), tokens_(options.max_tokens) {
  TENET_CHECK_GT(options_.max_tokens, 0.0);
  TENET_CHECK_GT(options_.cost_per_retry, 0.0);
  TENET_CHECK_GE(options_.deposit_per_success, 0.0);
  obs::MetricsRegistry* registry = options_.metrics != nullptr
                                       ? options_.metrics
                                       : obs::MetricsRegistry::Default();
  tokens_gauge_ = registry->GetGauge(
      "tenet_retry_budget_tokens",
      "Tokens left in the shared retry budget; zero means the fleet has "
      "collectively stopped retrying.");
  tokens_gauge_->Set(tokens_);
}

bool RetryBudget::TryAcquireRetry() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < options_.cost_per_retry) return false;
  tokens_ -= options_.cost_per_retry;
  tokens_gauge_->Set(tokens_);
  return true;
}

void RetryBudget::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ += options_.deposit_per_success;
  if (tokens_ > options_.max_tokens) tokens_ = options_.max_tokens;
  tokens_gauge_->Set(tokens_);
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

}  // namespace tenet
