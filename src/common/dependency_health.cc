#include "common/dependency_health.h"

#include <atomic>

#include "common/logging.h"

namespace tenet {
namespace {

std::atomic<DependencyObserver*> g_observer{nullptr};

}  // namespace

ScopedDependencyObserver::ScopedDependencyObserver(
    DependencyObserver* observer) {
  TENET_CHECK(observer != nullptr);
  DependencyObserver* expected = nullptr;
  TENET_CHECK(g_observer.compare_exchange_strong(expected, observer,
                                                 std::memory_order_acq_rel))
      << "a DependencyObserver is already installed; observers are scoped "
         "and must not nest";
}

ScopedDependencyObserver::~ScopedDependencyObserver() {
  g_observer.store(nullptr, std::memory_order_release);
}

bool DependencyObserverInstalled() {
  return g_observer.load(std::memory_order_acquire) != nullptr;
}

void ReportDependencyOutcome(const char* dependency, bool ok) {
  DependencyObserver* observer = g_observer.load(std::memory_order_acquire);
  if (observer == nullptr) return;
  observer->ObserveDependency(dependency, ok);
}

}  // namespace tenet
