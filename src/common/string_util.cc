#include "common/string_util.h"

#include <charconv>

namespace tenet {

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = AsciiFoldChar(c);
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiFoldChar(a[i]) != AsciiFoldChar(b[i])) return false;
  }
  return true;
}

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    if (end > start) out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         IsAsciiSpaceChar(s[begin])) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         IsAsciiSpaceChar(s[end - 1])) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsAsciiNumber(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!IsAsciiDigitChar(c)) return false;
  }
  return true;
}

bool IsCapitalized(std::string_view s) {
  return !s.empty() && IsAsciiUpperChar(s[0]);
}

Result<int64_t> ParseInt64(std::string_view s) {
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument("integer out of range: " + std::string(s));
  }
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("not an integer: " + std::string(s));
  }
  return value;
}

Result<double> ParseFloat64(std::string_view s) {
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument("number out of range: " + std::string(s));
  }
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("not a number: " + std::string(s));
  }
  return value;
}

}  // namespace tenet
