#ifndef TENET_COMMON_UTF8_H_
#define TENET_COMMON_UTF8_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace tenet {

// Strict UTF-8 validation and sanitization for the text front door.
//
// The lemmatizer's case fold is ASCII-only by contract (see AsciiFoldChar):
// it never inspects high-bit bytes, so a byte inside a *valid* multi-byte
// sequence is safe everywhere downstream.  Invalid bytes are another story —
// overlong encodings ("\xC0\x80" for NUL) are the classic alias-index
// smuggling vector, truncated sequences make byte-slicing heuristics read
// past their span, and surrogate halves break any later transcoding.  The
// pipeline therefore sanitizes documents before tokenization: every byte
// that is not part of a well-formed scalar-value encoding is replaced, so
// invalid bytes never reach the tokenizer or the case fold.
//
// "Well-formed" is RFC 3629: 1-4 byte sequences, shortest form only, no
// surrogates (U+D800..U+DFFF), nothing above U+10FFFF.

// Length in bytes of the well-formed UTF-8 sequence starting at data[0],
// or 0 if data[0] does not begin one (including truncation at `size`).
size_t Utf8SequenceLength(const char* data, size_t size);

struct Utf8Validation {
  bool valid = true;
  // Number of bytes not covered by any well-formed sequence.
  size_t invalid_bytes = 0;
  // Offset of the first invalid byte; meaningful only when !valid.
  size_t first_invalid = 0;
};

Utf8Validation ValidateUtf8(std::string_view s);

inline bool IsValidUtf8(std::string_view s) { return ValidateUtf8(s).valid; }

// Returns `s` with every byte that is not part of a well-formed sequence
// replaced by `replacement` (one byte per invalid byte, so offsets of the
// surviving valid bytes are preserved).  The default replacement is a
// space: the tokenizer treats it as a separator, so garbage bytes become
// token boundaries instead of token content.
std::string SanitizeUtf8(std::string_view s, char replacement = ' ');

}  // namespace tenet

#endif  // TENET_COMMON_UTF8_H_
