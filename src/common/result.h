#ifndef TENET_COMMON_RESULT_H_
#define TENET_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace tenet {

// Result<T> holds either a value of type T or a non-OK Status, in the style
// of absl::StatusOr / arrow::Result.  Accessing the value of an errored
// Result aborts the process (we do not use exceptions).
template <typename T>
class Result {
 public:
  // Implicit construction from both directions keeps call sites readable:
  //   Result<int> F() { if (bad) return Status::InvalidArgument("..."); ... }
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    TENET_CHECK(!status_.ok()) << "Result constructed from OK status";
  }
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TENET_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    TENET_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    TENET_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` if this Result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tenet

// Assigns the value of a Result-returning expression to `lhs`, or propagates
// the error.  `lhs` may declare a new variable:
//   TENET_ASSIGN_OR_RETURN(auto cover, solver.Solve(graph, bound));
//
// Propagation is code-preserving: the returned Status carries the original
// StatusCode and message untouched, so domain-specific codes
// (kBoundTooSmall, kDeadlineExceeded, kDataLoss) survive any number of
// macro hops and remain actionable at the top of the pipeline.  `expr` is
// evaluated exactly once and its value is moved, never copied.
#define TENET_ASSIGN_OR_RETURN(lhs, expr)                     \
  TENET_ASSIGN_OR_RETURN_IMPL_(                               \
      TENET_RESULT_CONCAT_(_tenet_result, __LINE__), lhs, expr)

#define TENET_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define TENET_RESULT_CONCAT_(a, b) TENET_RESULT_CONCAT_IMPL_(a, b)
#define TENET_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // TENET_COMMON_RESULT_H_
