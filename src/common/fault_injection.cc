#include "common/fault_injection.h"

#include <atomic>

#include "common/logging.h"

namespace tenet {
namespace {

std::atomic<FaultInjector*> g_active_injector{nullptr};

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Fnv1a(std::string_view s) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

double ToUnitDouble(uint64_t bits) {
  // 53 high bits -> [0, 1), the standard uniform-double construction.
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed) {
  FaultInjector* expected = nullptr;
  TENET_CHECK(g_active_injector.compare_exchange_strong(
      expected, this, std::memory_order_acq_rel))
      << "a FaultInjector is already installed; injectors are scoped and "
         "must not nest";
}

FaultInjector::~FaultInjector() {
  g_active_injector.store(nullptr, std::memory_order_release);
}

FaultInjector::PointState& FaultInjector::StateLocked(
    std::string_view point) {
  auto it = points_.find(std::string(point));
  if (it == points_.end()) {
    it = points_.emplace(std::string(point), PointState{}).first;
  }
  return it->second;
}

void FaultInjector::Arm(std::string_view point, double probability) {
  if (probability < 0.0) probability = 0.0;
  if (probability > 1.0) probability = 1.0;
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = StateLocked(point);
  state.mode = Mode::kProbability;
  state.probability = probability;
}

void FaultInjector::ArmNth(std::string_view point, int nth) {
  TENET_CHECK_GE(nth, 1) << "ArmNth takes a 1-based hit index";
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = StateLocked(point);
  state.mode = Mode::kNth;
  state.nth = nth;
}

void FaultInjector::Disarm(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu_);
  StateLocked(point).mode = Mode::kDisarmed;
}

int FaultInjector::HitCount(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(point));
  return it == points_.end() ? 0 : it->second.hits;
}

int FaultInjector::FireCount(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(point));
  return it == points_.end() ? 0 : it->second.fires;
}

bool FaultInjector::Fires(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = StateLocked(point);
  ++state.hits;
  bool fires = false;
  switch (state.mode) {
    case Mode::kDisarmed:
      break;
    case Mode::kProbability: {
      if (!state.rng_seeded) {
        state.rng_state = seed_ ^ Fnv1a(point);
        state.rng_seeded = true;
      }
      // One draw per hit, armed or not firing: the schedule of hit k is a
      // pure function of (seed, point, k).
      fires = ToUnitDouble(SplitMix64(state.rng_state)) < state.probability;
      break;
    }
    case Mode::kNth:
      fires = state.hits == state.nth;
      break;
  }
  if (fires) ++state.fires;
  return fires;
}

bool FaultInjectionArmed() {
  return g_active_injector.load(std::memory_order_acquire) != nullptr;
}

bool FaultPointFires(const char* point) {
  FaultInjector* injector =
      g_active_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return false;
  return injector->Fires(point);
}

}  // namespace tenet
