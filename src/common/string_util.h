#ifndef TENET_COMMON_STRING_UTIL_H_
#define TENET_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace tenet {

/// Lower-cases exactly the 26 ASCII uppercase letters and leaves every
/// other byte — including bytes >= 0x80, i.e. the middle of any UTF-8
/// sequence — untouched.  This is the only case fold the alias index may
/// use: std::tolower consults the global C locale, so a raw high-bit char
/// is undefined behavior (negative argument) and, under a Latin-1 locale,
/// would fold bytes inside multi-byte sequences and corrupt index keys.
constexpr char AsciiFoldChar(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c + ('a' - 'A')) : c;
}

// Locale-independent ASCII character classes.  The <cctype> functions
// consult the global C locale, so under e.g. a Latin-1 locale
// std::isalnum(0xE9) is true and the tokenizer would split tokens at
// different byte positions than the ASCII-only case fold assumes.  Every
// text-layer classifier routes through these instead: bytes >= 0x80 are
// never space / digit / alpha here, the same contract AsciiFoldChar keeps.

constexpr bool IsAsciiSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

constexpr bool IsAsciiDigitChar(char c) { return c >= '0' && c <= '9'; }

constexpr bool IsAsciiUpperChar(char c) { return c >= 'A' && c <= 'Z'; }

constexpr bool IsAsciiAlphaChar(char c) {
  return (c >= 'a' && c <= 'z') || IsAsciiUpperChar(c);
}

constexpr bool IsAsciiAlnumChar(char c) {
  return IsAsciiAlphaChar(c) || IsAsciiDigitChar(c);
}

/// Returns `s` with ASCII letters lower-cased (the alias index is
/// case-insensitive, following the paper's Solr setup).  Locale-independent
/// and byte-preserving outside [A-Z]; see AsciiFoldChar.
std::string AsciiToLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits on `sep`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if every character of `s` is an ASCII digit (and `s` is non-empty).
bool IsAsciiNumber(std::string_view s);

/// True if the first character is an ASCII uppercase letter.
bool IsCapitalized(std::string_view s);

// Checked numeric parsing (std::from_chars under the hood): the whole
// string must be consumed, no leading whitespace, locale-independent.
// The CLI and the KB deserializers both route through these — "4x" is
// InvalidArgument, never silently 4 (atoi-style prefix parsing is how a
// typo'd flag or a corrupt field goes unnoticed).

/// Parses a signed decimal integer; InvalidArgument on empty input,
/// trailing garbage, or overflow.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a floating-point number ("1.5", "1e-3", "inf"); InvalidArgument
/// on empty input, trailing garbage, or out-of-range values.
Result<double> ParseFloat64(std::string_view s);

}  // namespace tenet

#endif  // TENET_COMMON_STRING_UTIL_H_
