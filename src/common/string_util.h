#ifndef TENET_COMMON_STRING_UTIL_H_
#define TENET_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tenet {

/// Returns `s` with ASCII letters lower-cased (the alias index is
/// case-insensitive, following the paper's Solr setup).
std::string AsciiToLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits on `sep`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if every character of `s` is an ASCII digit (and `s` is non-empty).
bool IsAsciiNumber(std::string_view s);

/// True if the first character is an ASCII uppercase letter.
bool IsCapitalized(std::string_view s);

}  // namespace tenet

#endif  // TENET_COMMON_STRING_UTIL_H_
