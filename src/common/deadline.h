#ifndef TENET_COMMON_DEADLINE_H_
#define TENET_COMMON_DEADLINE_H_

#include <chrono>
#include <limits>
#include <string>

#include "common/status.h"

namespace tenet {

// A monotonic compute budget: a point on the steady clock after which work
// should stop.  Deadlines are cheap value types, passed by copy down the
// pipeline so every stage can poll the same budget.  An infinite deadline
// (the default) never expires; `Deadline::Expired()` is already past, which
// tests use to force the degraded path deterministically.
class Deadline {
 public:
  /// Never expires (the default for offline evaluation).
  Deadline() : infinite_(true) {}

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now.  Non-positive budgets are already
  /// expired; an infinite budget yields an infinite deadline.
  static Deadline AfterMillis(double ms) {
    if (ms == std::numeric_limits<double>::infinity()) return Infinite();
    Deadline d;
    d.infinite_ = false;
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(
                                     ms > 0.0 ? ms : 0.0));
    return d;
  }

  /// A deadline that has already passed.
  static Deadline Expired() { return AfterMillis(0.0); }

  bool infinite() const { return infinite_; }

  bool expired() const {
    return !infinite_ && Clock::now() >= when_;
  }

  /// Milliseconds left before expiry: +infinity when infinite, clamped to
  /// zero once past.
  double RemainingMillis() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    double left = std::chrono::duration<double, std::milli>(
                      when_ - Clock::now())
                      .count();
    return left > 0.0 ? left : 0.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool infinite_ = true;
  Clock::time_point when_{};
};

// Capped exponential backoff over a scalar budget (the tree-cost bound B,
// a batch size, a wait) — the reusable form of the pipeline's former ad-hoc
// bound-doubling loop.
struct RetryPolicy {
  /// Retries after the initial attempt (total attempts = max_retries + 1).
  int max_retries = 6;
  /// Growth factor applied to the value on every retry (>= 1).
  double multiplier = 2.0;
  /// Upper cap on the grown value.
  double max_value = std::numeric_limits<double>::infinity();
};

// Iterates the attempts of one RetryPolicy:
//
//   RetrySchedule schedule(policy, initial_bound);
//   do {
//     if (TrySolve(schedule.value())) break;
//   } while (schedule.Next());
class RetrySchedule {
 public:
  RetrySchedule(const RetryPolicy& policy, double initial_value)
      : policy_(policy), value_(initial_value) {}

  /// The value to use for the current attempt.
  double value() const { return value_; }

  /// Zero-based index of the current attempt.
  int attempt() const { return attempt_; }

  /// True once every retry has been consumed.
  bool exhausted() const { return attempt_ >= policy_.max_retries; }

  /// Advances to the next attempt, growing value().  Returns false (and
  /// leaves the state unchanged) when the policy is exhausted.
  bool Next() {
    if (exhausted()) return false;
    ++attempt_;
    value_ = value_ * policy_.multiplier;
    if (value_ > policy_.max_value) value_ = policy_.max_value;
    return true;
  }

 private:
  RetryPolicy policy_;
  double value_;
  int attempt_ = 0;
};

}  // namespace tenet

// Propagates kDeadlineExceeded when `deadline` has expired; `what` names
// the stage that was about to run (for the status message).
#define TENET_RETURN_IF_EXPIRED(deadline, what)             \
  do {                                                      \
    if ((deadline).expired()) {                             \
      return ::tenet::Status::DeadlineExceeded(             \
          std::string("deadline expired before ") + (what)); \
    }                                                       \
  } while (false)

#endif  // TENET_COMMON_DEADLINE_H_
