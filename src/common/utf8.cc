#include "common/utf8.h"

namespace tenet {

size_t Utf8SequenceLength(const char* data, size_t size) {
  if (size == 0) return 0;
  const unsigned char b0 = static_cast<unsigned char>(data[0]);
  if (b0 < 0x80) return 1;
  // Continuation byte or an invalid lead (0xC0/0xC1 are always-overlong
  // leads; 0xF5..0xFF encode values above U+10FFFF).
  if (b0 < 0xC2 || b0 > 0xF4) return 0;

  auto cont = [&](size_t i) {
    return i < size &&
           (static_cast<unsigned char>(data[i]) & 0xC0) == 0x80;
  };

  if (b0 < 0xE0) {  // 2 bytes: U+0080..U+07FF, no overlong possible (>=0xC2).
    return cont(1) ? 2 : 0;
  }
  if (b0 < 0xF0) {  // 3 bytes: U+0800..U+FFFF minus surrogates.
    if (!cont(1) || !cont(2)) return 0;
    const unsigned char b1 = static_cast<unsigned char>(data[1]);
    if (b0 == 0xE0 && b1 < 0xA0) return 0;  // overlong (< U+0800)
    if (b0 == 0xED && b1 >= 0xA0) return 0;  // surrogate half
    return 3;
  }
  // 4 bytes: U+10000..U+10FFFF.
  if (!cont(1) || !cont(2) || !cont(3)) return 0;
  const unsigned char b1 = static_cast<unsigned char>(data[1]);
  if (b0 == 0xF0 && b1 < 0x90) return 0;  // overlong (< U+10000)
  if (b0 == 0xF4 && b1 >= 0x90) return 0;  // above U+10FFFF
  return 4;
}

Utf8Validation ValidateUtf8(std::string_view s) {
  Utf8Validation v;
  size_t i = 0;
  while (i < s.size()) {
    const size_t len = Utf8SequenceLength(s.data() + i, s.size() - i);
    if (len == 0) {
      if (v.valid) {
        v.valid = false;
        v.first_invalid = i;
      }
      ++v.invalid_bytes;
      ++i;
      continue;
    }
    i += len;
  }
  return v;
}

std::string SanitizeUtf8(std::string_view s, char replacement) {
  std::string out(s);
  size_t i = 0;
  while (i < s.size()) {
    const size_t len = Utf8SequenceLength(s.data() + i, s.size() - i);
    if (len == 0) {
      out[i] = replacement;
      ++i;
      continue;
    }
    i += len;
  }
  return out;
}

}  // namespace tenet
