#ifndef TENET_COMMON_THREAD_POOL_H_
#define TENET_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/status.h"

namespace tenet {

// A fixed-size worker pool over a BoundedQueue, with cooperative
// cancellation.  The queue policy is part of the pool's contract: kBlock
// turns Submit into backpressure, kReject turns it into load shedding
// (kResourceExhausted), which is exactly the knob the serving layer's
// admission control needs.
//
// Cancellation is cooperative: Cancel() drops queued tasks and raises
// cancel_requested(); a running task that wants to stop early polls that
// flag.  Shutdown() instead drains everything already queued.  Both join
// the workers; the destructor is a Shutdown().
class ThreadPool {
 public:
  struct Options {
    int num_threads = 4;
    size_t queue_capacity = 1024;
    QueueOverflowPolicy overflow = QueueOverflowPolicy::kBlock;
  };

  explicit ThreadPool(Options options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`.  kResourceExhausted when the queue is full under
  /// kReject; kFailedPrecondition after Shutdown/Cancel.
  Status Submit(std::function<void()> task);

  /// Stops accepting work, drains the queue, joins the workers.  Idempotent.
  void Shutdown();

  /// Stops accepting work, drops queued (never-started) tasks, raises the
  /// cancellation flag for running tasks, joins the workers.  Returns the
  /// number of tasks that were dropped without running.
  size_t Cancel();

  /// True once Cancel() was called — running tasks poll this to stop early.
  bool cancel_requested() const {
    return cancel_requested_.load(std::memory_order_acquire);
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }
  size_t queue_depth() const { return queue_.size(); }

 private:
  void WorkerLoop();

  BoundedQueue<std::function<void()>> queue_;
  std::atomic<bool> cancel_requested_{false};
  std::vector<std::thread> workers_;
  std::atomic<bool> joined_{false};
};

}  // namespace tenet

#endif  // TENET_COMMON_THREAD_POOL_H_
