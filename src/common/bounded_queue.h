#ifndef TENET_COMMON_BOUNDED_QUEUE_H_
#define TENET_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace tenet {

// What Push does when the queue is at capacity.
enum class QueueOverflowPolicy {
  /// Wait until a consumer makes room (backpressure onto the producer).
  kBlock,
  /// Fail fast with kResourceExhausted (load shedding at the door).
  kReject,
};

// A fixed-capacity multi-producer / multi-consumer queue, the buffering
// element between the serving layer's admission door and its worker pool.
// The capacity is a hard bound on buffered work: with kBlock producers
// stall, with kReject they are told to shed.  Close() ends the stream:
// further pushes fail, consumers drain what is left and then see Pop()
// return false.
template <typename T>
class BoundedQueue {
 public:
  BoundedQueue(size_t capacity, QueueOverflowPolicy policy)
      : capacity_(capacity), policy_(policy) {
    TENET_CHECK_GT(capacity, 0u) << "BoundedQueue needs a positive capacity";
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item`.  kResourceExhausted when full under kReject,
  /// kFailedPrecondition once closed (under either policy).
  Status Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (policy_ == QueueOverflowPolicy::kReject) {
      if (closed_) return Status::FailedPrecondition("queue is closed");
      if (items_.size() >= capacity_) {
        return Status::ResourceExhausted("queue full");
      }
    } else {
      not_full_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) return Status::FailedPrecondition("queue is closed");
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return Status::Ok();
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// returns false only in the latter case.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking Pop; false when nothing is queued right now.
  bool TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Ends the stream: no further pushes, consumers drain then stop.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Drops every queued item (cooperative cancellation) and returns how
  /// many were dropped.  Consumers already past Pop() are unaffected.
  size_t Clear() {
    std::unique_lock<std::mutex> lock(mu_);
    size_t dropped = items_.size();
    items_.clear();
    lock.unlock();
    not_full_.notify_all();
    return dropped;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }
  QueueOverflowPolicy policy() const { return policy_; }

 private:
  const size_t capacity_;
  const QueueOverflowPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tenet

#endif  // TENET_COMMON_BOUNDED_QUEUE_H_
