#ifndef TENET_COMMON_DEPENDENCY_HEALTH_H_
#define TENET_COMMON_DEPENDENCY_HEALTH_H_

namespace tenet {

// Outcome stream of the pipeline's failure-prone dependencies, the signal
// that drives the serving layer's circuit breakers.  The design mirrors
// fault_injection.h: production call sites are annotated with
// TENET_OBSERVE_DEPENDENCY("area/operation", ok), which is a single
// relaxed-ish atomic load when nobody is listening; a serving layer that
// wants the signal installs a process-wide observer for its lifetime.
//
// The dependency names are the same strings as the TENET_FAULT_POINT names
// at the same call sites ("kb/alias_lookup", "embedding/fetch",
// "core/cover_solve"), so a chaos schedule armed on a fault point and the
// breaker watching that dependency agree on what they are talking about.
class DependencyObserver {
 public:
  virtual ~DependencyObserver() = default;

  /// Called once per observed dependency operation, possibly from many
  /// threads at once; implementations must be thread-safe and cheap.
  virtual void ObserveDependency(const char* dependency, bool ok) = 0;
};

// Installs `observer` as the process-wide dependency observer for the
// scope's lifetime.  At most one may be live at a time (it is meant to be
// owned by the one serving layer of the process).  The owner must stop all
// traffic before destroying the scope — same contract as FaultInjector.
class ScopedDependencyObserver {
 public:
  explicit ScopedDependencyObserver(DependencyObserver* observer);
  ~ScopedDependencyObserver();

  ScopedDependencyObserver(const ScopedDependencyObserver&) = delete;
  ScopedDependencyObserver& operator=(const ScopedDependencyObserver&) =
      delete;
};

/// True when an observer is installed — the fast path of the macro.
bool DependencyObserverInstalled();

/// Forwards one outcome to the installed observer (no-op without one).
/// Call through TENET_OBSERVE_DEPENDENCY, not directly.
void ReportDependencyOutcome(const char* dependency, bool ok);

}  // namespace tenet

// Reports the outcome of one dependency operation at this call site.
// `dependency` must be a string literal ("area/operation").
#define TENET_OBSERVE_DEPENDENCY(dependency, ok)          \
  do {                                                    \
    if (::tenet::DependencyObserverInstalled()) {         \
      ::tenet::ReportDependencyOutcome((dependency), (ok)); \
    }                                                     \
  } while (false)

#endif  // TENET_COMMON_DEPENDENCY_HEALTH_H_
