#ifndef TENET_COMMON_LOGGING_H_
#define TENET_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace tenet {
namespace internal_logging {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Accumulates one log line and emits it (to stderr) on destruction.  FATAL
// messages abort the process, which is how invariant violations surface in a
// no-exceptions codebase.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed operands of a disabled TENET_DCHECK.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Minimum severity that is actually printed; defaults to kWarning so tests
/// and benchmarks stay quiet.  Returns the previous threshold.
LogSeverity SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

}  // namespace internal_logging
}  // namespace tenet

#define TENET_LOG(severity)                                          \
  ::tenet::internal_logging::LogMessage(                             \
      ::tenet::internal_logging::LogSeverity::k##severity, __FILE__, \
      __LINE__)

// Fatal if `condition` is false.  Usable as a stream:
//   TENET_CHECK(x > 0) << "x was " << x;
#define TENET_CHECK(condition) \
  if (condition) {             \
  } else                       \
    TENET_LOG(Fatal) << "Check failed: " #condition " "

#define TENET_CHECK_EQ(a, b) TENET_CHECK((a) == (b))
#define TENET_CHECK_NE(a, b) TENET_CHECK((a) != (b))
#define TENET_CHECK_LT(a, b) TENET_CHECK((a) < (b))
#define TENET_CHECK_LE(a, b) TENET_CHECK((a) <= (b))
#define TENET_CHECK_GT(a, b) TENET_CHECK((a) > (b))
#define TENET_CHECK_GE(a, b) TENET_CHECK((a) >= (b))

#ifndef NDEBUG
#define TENET_DCHECK(condition) TENET_CHECK(condition)
#else
#define TENET_DCHECK(condition) \
  if (true) {                   \
  } else                        \
    ::tenet::internal_logging::NullStream()
#endif

#endif  // TENET_COMMON_LOGGING_H_
