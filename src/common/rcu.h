#ifndef TENET_COMMON_RCU_H_
#define TENET_COMMON_RCU_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "common/result.h"

namespace tenet {

// An epoch/refcount RCU cell: one mutable pointer-to-immutable-value,
// swapped by a (serialized) writer under concurrent lock-free readers.
// This is the primitive under the serving layer's live KB swap: readers
// are request threads pinning the KB generation they will link against,
// the writer is whoever publishes a new generation.
//
// Shape: a fixed ring of slots, each holding a value (shared_ptr) and a
// pin count.  The cell's state is one monotonically increasing u64 epoch;
// epoch E lives in slot E % num_slots.  Using the epoch itself as the
// published word (rather than a slot index or a raw pointer) makes
// validation ABA-proof: a slot can be reused, an epoch can never recur.
//
// Reader protocol (Acquire): load the current epoch, increment that
// slot's pin count, then re-check the epoch.  Unchanged means the pin
// landed before any writer could have considered the slot free, so the
// slot's value is stable for as long as the pin is held.  Changed means
// the writer moved on mid-handshake: undo the pin and retry (the retry
// loop runs at most once per concurrent publish — publishes are rare
// control-plane events).  No locks, no waiting: two atomic RMWs and two
// loads on the hot path.
//
// Writer protocol (Publish): under the writer mutex, find a slot whose
// pin count is zero among the num_slots - 1 slots that are not current —
// only the current slot can gain validated pins, so a non-current slot
// observed unpinned can gain at most transient (immediately-retracted)
// pins and never a reader of its value.  Install the value there and
// advance the epoch.  Destroying the displaced value happens right
// there, which is why the pins==0 check is the "grace period": no
// generation is freed while any reader still pins it.  If every
// non-current slot is pinned (num_slots - 1 distinct older generations
// all still referenced) the publish FAILS rather than blocks — a
// blocking writer holding the swap path while queued readers wait behind
// the very swap it waits on is how hot-swap systems deadlock.  Callers
// treat a failed publish like any other failed swap: keep the old
// generation, report, retry later.
//
// Epochs may skip values (a publish claims cur + k for the first free
// slot k); they are tickets, not sequence numbers.
//
// Destruction requires quiescence: all pins released, no readers in
// flight.  The serving layer guarantees this by joining its worker pool
// before the cell dies.
template <typename T>
class RcuCell {
 private:
  struct Slot {
    std::shared_ptr<const T> value;
    std::atomic<uint64_t> pins{0};
  };

 public:
  // A pinned reference: dereferences to the pinned value and releases the
  // pin on destruction.  Copyable (each copy holds its own pin) so it can
  // travel inside std::function-backed work items; cheap either way.
  class Pin {
   public:
    Pin() = default;
    ~Pin() { Release(); }

    Pin(const Pin& other)
        : slot_(other.slot_), value_(other.value_), epoch_(other.epoch_) {
      if (slot_ != nullptr) {
        slot_->pins.fetch_add(1, std::memory_order_acq_rel);
      }
    }
    Pin& operator=(const Pin& other) {
      if (this == &other) return *this;
      Pin copy(other);
      *this = std::move(copy);
      return *this;
    }
    Pin(Pin&& other) noexcept
        : slot_(other.slot_), value_(other.value_), epoch_(other.epoch_) {
      other.slot_ = nullptr;
      other.value_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this == &other) return *this;
      Release();
      slot_ = other.slot_;
      value_ = other.value_;
      epoch_ = other.epoch_;
      other.slot_ = nullptr;
      other.value_ = nullptr;
      return *this;
    }

    const T* get() const { return value_; }
    const T& operator*() const { return *value_; }
    const T* operator->() const { return value_; }
    explicit operator bool() const { return value_ != nullptr; }

    /// The epoch this pin captured — monotone across successive Acquires
    /// on one thread.
    uint64_t epoch() const { return epoch_; }

    void Release() {
      if (slot_ != nullptr) {
        slot_->pins.fetch_sub(1, std::memory_order_acq_rel);
        slot_ = nullptr;
        value_ = nullptr;
      }
    }

   private:
    friend class RcuCell;

    Pin(Slot* slot, const T* value, uint64_t epoch)
        : slot_(slot), value_(value), epoch_(epoch) {}

    Slot* slot_ = nullptr;
    const T* value_ = nullptr;
    uint64_t epoch_ = 0;
  };

  /// The cell is born holding `initial` at epoch 0.
  explicit RcuCell(std::shared_ptr<const T> initial, size_t num_slots = 8)
      : mask_(RoundUpPowerOfTwo(num_slots) - 1),
        slots_(new Slot[mask_ + 1]) {
    TENET_CHECK(initial != nullptr);
    slots_[0].value = std::move(initial);
  }

  ~RcuCell() {
    for (uint64_t s = 0; s <= mask_; ++s) {
      TENET_CHECK_EQ(slots_[s].pins.load(std::memory_order_acquire),
                     uint64_t{0})
          << "RcuCell destroyed while a reader still pins a slot";
    }
  }

  RcuCell(const RcuCell&) = delete;
  RcuCell& operator=(const RcuCell&) = delete;

  /// Pins the current value.  Lock-free; the value stays alive (and its
  /// slot is never repurposed) until the returned Pin — and all its
  /// copies — are released.
  Pin Acquire() const {
    for (;;) {
      const uint64_t epoch = current_.load(std::memory_order_acquire);
      Slot& slot = slots_[epoch & mask_];
      slot.pins.fetch_add(1, std::memory_order_acq_rel);
      if (current_.load(std::memory_order_acquire) == epoch) {
        // The pin landed while `epoch` was still current, so no writer
        // has considered (or will consider) this slot free: the value
        // read below is the one published with `epoch`.
        return Pin(&slot, slot.value.get(), epoch);
      }
      // A publish raced the handshake; this slot may be getting reused.
      slot.pins.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  /// An owning reference to the current value (pin, copy, unpin).
  std::shared_ptr<const T> Current() const {
    Pin pin = Acquire();
    return pin.slot_->value;  // stable while pinned
  }

  /// Publishes `value` as the new current.  Returns the new epoch, or
  /// ResourceExhausted when every non-current slot is still pinned by
  /// readers of older generations (the caller keeps serving the old
  /// value).  Serialized internally; safe from any thread.
  Result<uint64_t> Publish(std::shared_ptr<const T> value) {
    TENET_CHECK(value != nullptr);
    std::lock_guard<std::mutex> lock(writer_mu_);
    const uint64_t current = current_.load(std::memory_order_relaxed);
    for (uint64_t k = 1; k <= mask_; ++k) {
      const uint64_t epoch = current + k;
      Slot& slot = slots_[epoch & mask_];
      if (slot.pins.load(std::memory_order_acquire) != 0) continue;
      // Unpinned and not current: no reader can validate a pin on this
      // slot (validation requires current_ to equal the slot's past
      // epoch, which is gone for good), so the swap below is unobserved.
      // The displaced value is destroyed here — after its grace period.
      slot.value = std::move(value);
      current_.store(epoch, std::memory_order_release);
      return epoch;
    }
    return Status::ResourceExhausted(
        "rcu: all slots pinned by in-flight readers; publish refused");
  }

  /// The epoch of the most recent publish (0 = the initial value).
  uint64_t epoch() const { return current_.load(std::memory_order_acquire); }

  size_t num_slots() const { return static_cast<size_t>(mask_) + 1; }

 private:
  static uint64_t RoundUpPowerOfTwo(size_t n) {
    uint64_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  const uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> current_{0};
  std::mutex writer_mu_;
};

}  // namespace tenet

#endif  // TENET_COMMON_RCU_H_
