#ifndef TENET_COMMON_CIRCUIT_BREAKER_H_
#define TENET_COMMON_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace tenet {

// State of a CircuitBreaker, with the classic closed -> open -> half-open
// transitions:
//
//   kClosed    traffic flows; a sliding window of outcomes is watched.
//   kOpen      the dependency is considered down; Allow() refuses until the
//              cooldown elapses (callers route to a degraded tier).
//   kHalfOpen  after the cooldown a few probe requests are let through;
//              consecutive successes close the breaker, any failure
//              re-opens it.
enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

/// Canonical lower_snake_case name of a breaker state ("closed", "open",
/// "half_open") for logs and stats tables.
std::string_view BreakerStateToString(BreakerState state);

struct CircuitBreakerOptions {
  /// Number of most-recent outcomes considered by the failure-rate window.
  int window_size = 64;
  /// The breaker never trips before the window holds this many outcomes,
  /// so a single early failure cannot open it.
  int min_samples = 16;
  /// Failure rate (failures / outcomes in window) at or above which the
  /// breaker trips open.
  double failure_threshold = 0.5;
  /// How long an open breaker refuses before letting probes through.
  double open_cooldown_ms = 50.0;
  /// Requests admitted as probes while half-open; the allowance is
  /// replenished by successful probe outcomes so a slow trickle of
  /// observations can still close the breaker.
  int half_open_probes = 4;
  /// Consecutive successful outcomes, observed while half-open, required
  /// to close the breaker again.
  int half_open_successes = 4;
  /// Registry receiving the breaker's transition counters and state gauge
  /// (tenet_breaker_transitions_total{dependency=,to=},
  /// tenet_breaker_state{dependency=}).  Null publishes to the process-wide
  /// default registry; tests inject their own for isolated windows.
  obs::MetricsRegistry* metrics = nullptr;
};

// A per-dependency circuit breaker driven by a sliding failure-rate
// window, in the style of the resilience layers of large serving systems
// (Hystrix, Envoy outlier detection).  Two call paths feed it:
//
//   Allow()          the routing decision, taken once per request before
//                    touching the dependency; false means "serve degraded".
//   RecordOutcome()  the observation stream, one call per dependency
//                    operation (success or failure).
//
// Outcomes are decoupled from requests on purpose: one document may touch
// a dependency hundreds of times (embedding fetches) or once (the cover
// solve), and the breaker only cares about the aggregate health signal.
// All methods are thread-safe; Allow() and RecordOutcome() are a mutex
// acquisition plus O(1) work.
class CircuitBreaker {
 public:
  struct Stats {
    int64_t outcomes = 0;   // observations recorded
    int64_t failures = 0;   // failed observations
    int64_t rejected = 0;   // Allow() calls refused
    int trips = 0;          // closed/half-open -> open transitions
    int closes = 0;         // half-open -> closed transitions
  };

  explicit CircuitBreaker(std::string name, CircuitBreakerOptions options = {});

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Routing decision: true when the request may use the dependency.
  bool Allow();

  /// Feeds one dependency operation outcome into the window.
  void RecordOutcome(bool ok);

  /// Hands back a half-open probe granted by Allow() that the caller ended
  /// up not using (e.g. a sibling breaker forced the request onto the
  /// degraded tier, so this dependency was never touched).  Without the
  /// return, unused probes would drain the allowance with no outcome ever
  /// arriving and the breaker would be stuck half-open.  No-op outside the
  /// half-open state.
  void ReturnProbe();

  BreakerState state() const;
  Stats stats() const;
  const std::string& name() const { return name_; }
  const CircuitBreakerOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  // All private transitions run under mu_.
  void TripLocked();
  void CloseLocked();
  double WindowFailureRateLocked() const;

  /// Publishes a state change: the transition counter for `to` and the
  /// state gauge.  Called under mu_.
  void RecordTransitionLocked(BreakerState to);

  const std::string name_;
  const CircuitBreakerOptions options_;

  // Registry-backed observability (resolved once at construction; the
  // pointers are stable for the registry's lifetime).
  obs::Counter* transitions_to_[3] = {nullptr, nullptr, nullptr};
  obs::Gauge* state_gauge_ = nullptr;

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  Clock::time_point opened_at_{};
  // Ring buffer of the last window_size outcomes (1 = failure).
  std::vector<uint8_t> window_;
  int window_next_ = 0;
  int window_count_ = 0;
  int window_failures_ = 0;
  // Half-open bookkeeping.
  int probes_left_ = 0;
  int success_streak_ = 0;
  Stats stats_;
};

// A token bucket shared between every retry site of the serving layer, so
// retries cannot amplify an outage (the "retry budget" of Finagle/Envoy):
// each retry spends one token, each successful first attempt deposits a
// fraction of one.  When a dependency is down, failures stop the deposits,
// the bucket drains, and the whole fleet of workers collectively stops
// retrying instead of multiplying the load on the struggling dependency.
class RetryBudget {
 public:
  struct Options {
    /// Tokens in the bucket at start (and its cap).
    double max_tokens = 10.0;
    /// Deposit per successful first attempt.
    double deposit_per_success = 0.1;
    /// Cost of one retry.
    double cost_per_retry = 1.0;
    /// Registry receiving the tenet_retry_budget_tokens gauge.  Null
    /// publishes to the process-wide default registry.
    obs::MetricsRegistry* metrics = nullptr;
  };

  RetryBudget();
  explicit RetryBudget(Options options);

  /// Spends one retry's worth of tokens; false (and no spend) when the
  /// bucket cannot cover it — the caller must skip the retry.
  bool TryAcquireRetry();

  /// Deposits for a successful first attempt.
  void RecordSuccess();

  double tokens() const;

 private:
  const Options options_;
  obs::Gauge* tokens_gauge_ = nullptr;
  mutable std::mutex mu_;
  double tokens_;
};

}  // namespace tenet

#endif  // TENET_COMMON_CIRCUIT_BREAKER_H_
