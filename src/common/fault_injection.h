#ifndef TENET_COMMON_FAULT_INJECTION_H_
#define TENET_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tenet {

// Deterministic fault injection, in the style of LevelDB/RocksDB fault
// environments: production code marks its failure-prone operations with
// TENET_FAULT_POINT("area/operation"), and tests arm those points through a
// scoped FaultInjector.  With no injector installed the macro is a single
// relaxed atomic load; with TENET_DISABLE_FAULT_INJECTION defined it
// compiles to `false` outright.
//
// Schedules are seed-reproducible: each point draws from its own splitmix64
// stream keyed by (seed, point name), so whether the k-th hit of a point
// fires depends only on the seed and k — never on how hits of different
// points interleave (including across threads).
//
// Usage in production code (the fault point decides only *whether* to fail;
// the call site decides *how*, using its normal error path):
//
//   if (TENET_FAULT_POINT("kb/alias_lookup")) return {};  // lookup failed
//
// Usage in tests:
//
//   FaultInjector faults(/*seed=*/7);
//   faults.Arm("kb/alias_lookup", /*probability=*/0.3);
//   faults.ArmNth("core/cover_solve", /*nth=*/2);  // fail the 2nd call only
//   ... exercise the system ...
//   EXPECT_GT(faults.FireCount("kb/alias_lookup"), 0);
class FaultInjector {
 public:
  /// Installs this injector as the process-wide active one.  At most one
  /// injector may be live at a time (they are meant to be scoped to a test).
  explicit FaultInjector(uint64_t seed);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `point` to fire independently on each hit with `probability`
  /// (clamped to [0, 1]), drawn from the point's deterministic stream.
  void Arm(std::string_view point, double probability);

  /// Arms `point` to fire on exactly its `nth` hit (1-based) and never
  /// again.  `nth` must be >= 1.
  void ArmNth(std::string_view point, int nth);

  /// Disarms `point`; its hit/fire counters are preserved.
  void Disarm(std::string_view point);

  /// Times the point was reached while this injector was installed
  /// (armed or not).
  int HitCount(std::string_view point) const;

  /// Times the point actually fired.
  int FireCount(std::string_view point) const;

  uint64_t seed() const { return seed_; }

 private:
  friend bool FaultPointFires(const char* point);

  enum class Mode { kDisarmed, kProbability, kNth };

  struct PointState {
    Mode mode = Mode::kDisarmed;
    double probability = 0.0;
    int nth = 0;
    int hits = 0;
    int fires = 0;
    uint64_t rng_state = 0;  // lazily seeded from (seed_, point name)
    bool rng_seeded = false;
  };

  bool Fires(const char* point);
  PointState& StateLocked(std::string_view point);

  const uint64_t seed_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, PointState> points_;
};

/// True when a FaultInjector is currently installed.  One relaxed-ish
/// atomic load; the not-under-test fast path of TENET_FAULT_POINT.
bool FaultInjectionArmed();

/// Records a hit on `point` against the installed injector and returns
/// whether this hit fires.  Returns false when no injector is installed.
/// Call through TENET_FAULT_POINT, not directly.
bool FaultPointFires(const char* point);

}  // namespace tenet

// Evaluates to true when the named fault point should simulate a failure
// at this call site.  `point` must be a string literal ("area/operation").
#ifdef TENET_DISABLE_FAULT_INJECTION
#define TENET_FAULT_POINT(point) (false)
#else
#define TENET_FAULT_POINT(point) \
  (::tenet::FaultInjectionArmed() && ::tenet::FaultPointFires(point))
#endif

#endif  // TENET_COMMON_FAULT_INJECTION_H_
