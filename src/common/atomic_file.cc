#include "common/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#ifdef _WIN32
#include <fstream>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace tenet {
namespace {

std::string ErrnoMessage(const char* op, const std::string& path) {
  return std::string(op) + " " + path + ": " + std::strerror(errno);
}

std::string ParentDirectory(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

#ifdef _WIN32

// No POSIX fd durability on Windows; fall back to stream writes + rename.
// The rename is still atomic-enough for the test environments this build
// targets; production serving is POSIX.
Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) return Status::Internal("cannot open " + tmp + " for writing");
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
    out.flush();
    if (!out) return Status::Internal("write to " + tmp + " failed");
  }
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal(ErrnoMessage("rename", tmp));
  }
  return Status::Ok();
}

#else

Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal(ErrnoMessage("open", tmp));

  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    ssize_t written = ::write(fd, p, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      Status status = Status::Internal(ErrnoMessage("write", tmp));
      ::close(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    p += written;
    remaining -= static_cast<size_t>(written);
  }

  // fsync the payload before the rename makes it visible: the rename must
  // never outrun the data, or a crash could publish an empty file.
  if (::fsync(fd) != 0) {
    Status status = Status::Internal(ErrnoMessage("fsync", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::close(fd) != 0) {
    Status status = Status::Internal(ErrnoMessage("close", tmp));
    ::unlink(tmp.c_str());
    return status;
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = Status::Internal(ErrnoMessage("rename", tmp));
    ::unlink(tmp.c_str());
    return status;
  }

  // fsync the directory so the new entry survives a crash.  Failure here
  // is reported (the caller may want to retry), but the file is already in
  // place and self-consistent either way.
  const std::string dir = ParentDirectory(path);
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return Status::Internal(ErrnoMessage("open dir", dir));
  if (::fsync(dir_fd) != 0) {
    Status status = Status::Internal(ErrnoMessage("fsync dir", dir));
    ::close(dir_fd);
    return status;
  }
  ::close(dir_fd);
  return Status::Ok();
}

#endif  // _WIN32

}  // namespace tenet
