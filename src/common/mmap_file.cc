#include "common/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define TENET_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define TENET_HAS_MMAP 0
#endif

namespace tenet {
namespace {

Result<std::vector<std::byte>> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  in.seekg(0, std::ios::end);
  std::streamoff size = in.tellg();
  if (size < 0) return Status::Internal("cannot size " + path);
  in.seekg(0, std::ios::beg);
  std::vector<std::byte> buffer(static_cast<size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(buffer.data()), size);
    if (!in) return Status::Internal("short read from " + path);
  }
  return buffer;
}

}  // namespace

Result<MmapFile> MmapFile::Open(const std::string& path, bool prefer_mmap) {
  MmapFile file;
#if TENET_HAS_MMAP
  if (prefer_mmap) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::NotFound("cannot open " + path + ": " +
                              std::strerror(errno));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return Status::Internal("cannot stat " + path);
    }
    size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {  // mmap of length 0 is EINVAL; an empty view is valid
      ::close(fd);
      return file;
    }
    int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
    // Pre-fault the whole mapping in one sweep: the loader touches nearly
    // every page anyway, and scattered minor faults (worse: concurrent ones
    // from shard-restore workers serializing on the mmap lock) cost more
    // than eager population of an already-cached snapshot.
    flags |= MAP_POPULATE;
#endif
    void* addr = ::mmap(nullptr, size, PROT_READ, flags, fd, 0);
    ::close(fd);  // the mapping keeps the pages alive
    if (addr == MAP_FAILED) {
      // Graceful degradation: some filesystems (and test harnesses) refuse
      // mmap; fall through to the buffered path below instead of failing.
      TENET_ASSIGN_OR_RETURN(file.owned_, ReadWholeFile(path));
      file.data_ = file.owned_.data();
      file.size_ = file.owned_.size();
      return file;
    }
    file.data_ = static_cast<const std::byte*>(addr);
    file.size_ = size;
    file.mapped_ = true;
    return file;
  }
#else
  (void)prefer_mmap;
#endif
  TENET_ASSIGN_OR_RETURN(file.owned_, ReadWholeFile(path));
  file.data_ = file.owned_.data();
  file.size_ = file.owned_.size();
  return file;
}

void MmapFile::Release() {
#if TENET_HAS_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  owned_.clear();
}

MmapFile::~MmapFile() { Release(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      owned_(std::move(other.owned_)) {
  if (!mapped_ && data_ != nullptr) data_ = owned_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  other.owned_.clear();
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    owned_ = std::move(other.owned_);
    if (!mapped_ && data_ != nullptr) data_ = owned_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    other.owned_.clear();
  }
  return *this;
}

}  // namespace tenet
