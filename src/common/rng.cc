#include "common/rng.h"

#include <cmath>

namespace tenet {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  TENET_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  while (true) {
    uint64_t draw = NextUint64();
    if (draw >= threshold) return draw % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  TENET_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(theta);
  has_spare_gaussian_ = true;
  return radius * std::cos(theta);
}

int64_t Rng::NextZipf(int64_t n, double s) {
  TENET_CHECK_GT(n, 0);
  if (n == 1) return 0;
  // Inverse-CDF over the (small) support; n is at most a few dozen wherever
  // this is used (candidate priors), so linear scan is fine.
  double norm = 0.0;
  for (int64_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(k, s);
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(k, s);
    if (u <= acc) return k - 1;
  }
  return n - 1;
}

Rng Rng::Fork(uint64_t label) {
  uint64_t mix = NextUint64() ^ (label * 0x9e3779b97f4a7c15ULL);
  return Rng(mix);
}

}  // namespace tenet
