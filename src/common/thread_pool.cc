#include "common/thread_pool.h"

#include <utility>

#include "common/logging.h"

namespace tenet {

ThreadPool::ThreadPool(Options options)
    : queue_(options.queue_capacity, options.overflow) {
  TENET_CHECK_GT(options.num_threads, 0);
  workers_.reserve(options.num_threads);
  for (int i = 0; i < options.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::Submit(std::function<void()> task) {
  TENET_CHECK(task != nullptr) << "ThreadPool::Submit with empty task";
  return queue_.Push(std::move(task));
}

void ThreadPool::WorkerLoop() {
  std::function<void()> task;
  while (queue_.Pop(&task)) {
    task();
    task = nullptr;  // release captures before blocking on the next Pop
  }
}

void ThreadPool::Shutdown() {
  queue_.Close();
  if (joined_.exchange(true)) return;
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::Cancel() {
  cancel_requested_.store(true, std::memory_order_release);
  queue_.Close();
  size_t dropped = queue_.Clear();
  if (!joined_.exchange(true)) {
    for (std::thread& worker : workers_) worker.join();
  }
  return dropped;
}

}  // namespace tenet
