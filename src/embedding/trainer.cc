#include "embedding/trainer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace tenet {
namespace embedding {
namespace {

std::vector<float> RandomUnitVector(int dim, Rng& rng) {
  std::vector<float> v(dim);
  double norm_sq = 0.0;
  for (int d = 0; d < dim; ++d) {
    v[d] = static_cast<float>(rng.NextGaussian());
    norm_sq += double{v[d]} * v[d];
  }
  double norm = std::sqrt(std::max(norm_sq, 1e-12));
  for (float& x : v) x = static_cast<float>(x / norm);
  return v;
}

}  // namespace

EmbeddingStore StructuralEmbeddingTrainer::Train(const kb::KnowledgeBase& kb,
                                                 Rng& rng) const {
  TENET_CHECK(kb.finalized());
  const int dim = options_.dimension;
  EmbeddingStore store(dim, kb.num_entities(), kb.num_predicates());

  // One centroid per domain, lazily created.
  std::unordered_map<int32_t, std::vector<float>> centroids;
  auto centroid_of = [&](int32_t domain) -> const std::vector<float>& {
    auto it = centroids.find(domain);
    if (it == centroids.end()) {
      it = centroids.emplace(domain, RandomUnitVector(dim, rng)).first;
    }
    return it->second;
  };

  auto seed_vector = [&](kb::ConceptRef ref, int32_t domain) {
    const std::vector<float>& c = centroid_of(domain);
    std::span<float> v = store.MutableVector(ref);
    for (int d = 0; d < dim; ++d) {
      v[d] = c[d] + static_cast<float>(options_.noise * rng.NextGaussian() /
                                       std::sqrt(static_cast<double>(dim)));
    }
  };

  for (kb::EntityId e = 0; e < kb.num_entities(); ++e) {
    seed_vector(kb::ConceptRef::Entity(e), kb.entity(e).domain);
  }
  for (kb::PredicateId p = 0; p < kb.num_predicates(); ++p) {
    seed_vector(kb::ConceptRef::Predicate(p), kb.predicate(p).domain);
  }

  // Shared per-fact components: subject and object of each fact receive
  // the same random direction (damped for the predicate), so direct fact
  // partners end up measurably closer than arbitrary same-domain pairs.
  if (options_.fact_component > 0.0) {
    const double gamma = options_.fact_component;
    for (const kb::Triple& t : kb.facts()) {
      std::vector<float> f = RandomUnitVector(dim, rng);
      auto add = [&](kb::ConceptRef ref, double weight) {
        std::span<float> v = store.MutableVector(ref);
        for (int d = 0; d < dim; ++d) {
          v[d] += static_cast<float>(weight * gamma * f[d]);
        }
      };
      add(kb::ConceptRef::Entity(t.subject), 1.0);
      if (t.object_is_entity) add(kb::ConceptRef::Entity(t.object_entity), 1.0);
      // Predicates participate in far more facts than entities; per-fact
      // components would swamp their domain structure, so they keep the
      // centroid + smoothing signal only.
    }
  }

  // Neighborhood smoothing over the fact graph.  Entities average over
  // adjacent entities; predicates average over the subjects/objects of
  // their facts.
  const size_t total =
      static_cast<size_t>(kb.num_entities()) + kb.num_predicates();
  std::vector<float> next(total * dim);
  for (int iter = 0; iter < options_.smoothing_iterations; ++iter) {
    const double alpha = options_.smoothing_alpha;
    auto blend = [&](kb::ConceptRef ref, size_t flat,
                     const std::vector<kb::ConceptRef>& neighbors) {
      std::span<const float> self = store.Vector(ref);
      float* out = next.data() + flat * dim;
      if (neighbors.empty()) {
        std::copy(self.begin(), self.end(), out);
        return;
      }
      std::vector<double> mean(dim, 0.0);
      for (kb::ConceptRef n : neighbors) {
        std::span<const float> nv = store.Vector(n);
        for (int d = 0; d < dim; ++d) mean[d] += nv[d];
      }
      for (int d = 0; d < dim; ++d) {
        mean[d] /= static_cast<double>(neighbors.size());
        out[d] = static_cast<float>((1.0 - alpha) * self[d] +
                                    alpha * mean[d]);
      }
    };

    for (kb::EntityId e = 0; e < kb.num_entities(); ++e) {
      std::vector<kb::ConceptRef> neighbors;
      for (kb::EntityId n : kb.NeighborEntities(e)) {
        neighbors.push_back(kb::ConceptRef::Entity(n));
      }
      blend(kb::ConceptRef::Entity(e), static_cast<size_t>(e), neighbors);
    }
    for (kb::PredicateId p = 0; p < kb.num_predicates(); ++p) {
      std::vector<kb::ConceptRef> neighbors;
      for (int32_t fact_index : kb.FactsOfPredicate(p)) {
        const kb::Triple& t = kb.facts()[fact_index];
        neighbors.push_back(kb::ConceptRef::Entity(t.subject));
        if (t.object_is_entity) {
          neighbors.push_back(kb::ConceptRef::Entity(t.object_entity));
        }
      }
      blend(kb::ConceptRef::Predicate(p),
            static_cast<size_t>(kb.num_entities()) + p, neighbors);
    }

    // Write back.
    for (kb::EntityId e = 0; e < kb.num_entities(); ++e) {
      std::span<float> v = store.MutableVector(kb::ConceptRef::Entity(e));
      const float* src = next.data() + static_cast<size_t>(e) * dim;
      std::copy(src, src + dim, v.begin());
    }
    for (kb::PredicateId p = 0; p < kb.num_predicates(); ++p) {
      std::span<float> v = store.MutableVector(kb::ConceptRef::Predicate(p));
      const float* src =
          next.data() + (static_cast<size_t>(kb.num_entities()) + p) * dim;
      std::copy(src, src + dim, v.begin());
    }
  }

  store.Finalize();
  return store;
}

}  // namespace embedding
}  // namespace tenet
