#include "embedding/embedding_store.h"

#include <cmath>

#include "common/dependency_health.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace tenet {
namespace embedding {

EmbeddingStore::EmbeddingStore(int dimension, int32_t num_entities,
                               int32_t num_predicates)
    : dimension_(dimension),
      num_entities_(num_entities),
      num_predicates_(num_predicates),
      data_(static_cast<size_t>(dimension) * (num_entities + num_predicates),
            0.0f) {
  TENET_CHECK_GT(dimension, 0);
  TENET_CHECK_GE(num_entities, 0);
  TENET_CHECK_GE(num_predicates, 0);
}

size_t EmbeddingStore::NormIndex(kb::ConceptRef ref) const {
  TENET_CHECK(ref.valid());
  if (ref.is_entity()) {
    TENET_CHECK_LT(ref.id, num_entities_);
    return static_cast<size_t>(ref.id);
  }
  TENET_CHECK_LT(ref.id, num_predicates_);
  return static_cast<size_t>(num_entities_) + ref.id;
}

size_t EmbeddingStore::Offset(kb::ConceptRef ref) const {
  return NormIndex(ref) * static_cast<size_t>(dimension_);
}

std::span<float> EmbeddingStore::MutableVector(kb::ConceptRef ref) {
  TENET_CHECK(!finalized_) << "write after Finalize";
  return std::span<float>(data_.data() + Offset(ref), dimension_);
}

std::span<const float> EmbeddingStore::Vector(kb::ConceptRef ref) const {
  return std::span<const float>(data_.data() + Offset(ref), dimension_);
}

void EmbeddingStore::Finalize() {
  TENET_CHECK(!finalized_) << "Finalize called twice";
  size_t count = static_cast<size_t>(num_entities_) + num_predicates_;
  norms_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    double sum = 0.0;
    const float* v = data_.data() + i * dimension_;
    for (int d = 0; d < dimension_; ++d) sum += double{v[d]} * v[d];
    norms_[i] = std::sqrt(sum);
  }
  finalized_ = true;
}

double EmbeddingStore::Cosine(kb::ConceptRef a, kb::ConceptRef b) const {
  TENET_CHECK(finalized_) << "Cosine before Finalize";
  // A fired fetch fault behaves like a missing vector: zero similarity,
  // the same value a genuinely absent (zero-norm) embedding yields.
  const bool faulted = TENET_FAULT_POINT("embedding/fetch");
  TENET_OBSERVE_DEPENDENCY("embedding/fetch", !faulted);
  static obs::DependencyOpCounters& ops =
      *new obs::DependencyOpCounters("embedding/fetch");
  ops.Record(!faulted);
  if (faulted) return 0.0;
  size_t ia = NormIndex(a);
  size_t ib = NormIndex(b);
  if (norms_[ia] <= 0.0 || norms_[ib] <= 0.0) return 0.0;
  const float* va = data_.data() + ia * dimension_;
  const float* vb = data_.data() + ib * dimension_;
  double dot = 0.0;
  for (int d = 0; d < dimension_; ++d) dot += double{va[d]} * vb[d];
  double cosine = dot / (norms_[ia] * norms_[ib]);
  if (cosine > 1.0) cosine = 1.0;
  if (cosine < -1.0) cosine = -1.0;
  return cosine;
}

}  // namespace embedding
}  // namespace tenet
