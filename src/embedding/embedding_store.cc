#include "embedding/embedding_store.h"

#include <cmath>
#include <cstring>

#include "common/dependency_health.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "embedding/dot_kernel.h"

namespace tenet {
namespace embedding {

EmbeddingStore::EmbeddingStore(int dimension, int32_t num_entities,
                               int32_t num_predicates)
    : dimension_(dimension),
      num_entities_(num_entities),
      num_predicates_(num_predicates),
      data_(static_cast<size_t>(dimension) * (num_entities + num_predicates),
            0.0f),
      ops_("embedding/fetch") {
  TENET_CHECK_GT(dimension, 0);
  TENET_CHECK_GE(num_entities, 0);
  TENET_CHECK_GE(num_predicates, 0);
}

size_t EmbeddingStore::RowIndex(kb::ConceptRef ref) const {
  TENET_CHECK(ref.valid());
  if (ref.is_entity()) {
    TENET_CHECK_LT(ref.id, num_entities_);
    return static_cast<size_t>(ref.id);
  }
  TENET_CHECK_LT(ref.id, num_predicates_);
  return static_cast<size_t>(num_entities_) + ref.id;
}

size_t EmbeddingStore::Offset(kb::ConceptRef ref) const {
  return RowIndex(ref) * static_cast<size_t>(dimension_);
}

std::span<float> EmbeddingStore::MutableVector(kb::ConceptRef ref) {
  TENET_CHECK(!finalized_) << "write after Finalize";
  return std::span<float>(data_.data() + Offset(ref), dimension_);
}

std::span<const float> EmbeddingStore::Vector(kb::ConceptRef ref) const {
  return std::span<const float>(data_.data() + Offset(ref), dimension_);
}

std::span<const double> EmbeddingStore::UnitVector(kb::ConceptRef ref) const {
  TENET_CHECK(finalized_) << "UnitVector before Finalize";
  return std::span<const double>(unit_data_.data() + Offset(ref), dimension_);
}

void EmbeddingStore::Finalize() {
  TENET_CHECK(!finalized_) << "Finalize called twice";
  size_t count = static_cast<size_t>(num_entities_) + num_predicates_;
  unit_data_.assign(data_.size(), 0.0);
  for (size_t i = 0; i < count; ++i) {
    const float* v = data_.data() + i * dimension_;
    double sum = 0.0;
    for (int d = 0; d < dimension_; ++d) sum += double{v[d]} * v[d];
    double norm = std::sqrt(sum);
    if (norm <= 0.0) continue;  // zero rows stay zero: cosine 0 by design
    double* unit = unit_data_.data() + i * dimension_;
    for (int d = 0; d < dimension_; ++d) {
      unit[d] = double{v[d]} / norm;
    }
  }
  finalized_ = true;
}

Status EmbeddingStore::LoadMatrix(const void* matrix, size_t count_floats) {
  TENET_CHECK(!finalized_) << "LoadMatrix after Finalize";
  if (count_floats != data_.size()) {
    return Status::InvalidArgument("embedding matrix size mismatch");
  }
  // memcpy tolerates any source alignment — mmapped payloads start at a
  // file offset the format does not promise to be float-aligned.
  std::memcpy(data_.data(), matrix, count_floats * sizeof(float));
  size_t count = static_cast<size_t>(num_entities_) + num_predicates_;
  unit_data_.assign(data_.size(), 0.0);
  for (size_t i = 0; i < count; ++i) {
    const float* v = data_.data() + i * dimension_;
    double sum = 0.0;
    for (int d = 0; d < dimension_; ++d) {
      if (!std::isfinite(v[d])) {
        unit_data_.clear();
        return Status::DataLoss("non-finite embedding payload");
      }
      sum += double{v[d]} * v[d];
    }
    double norm = std::sqrt(sum);
    if (norm <= 0.0) continue;  // zero rows stay zero: cosine 0 by design
    double* unit = unit_data_.data() + i * dimension_;
    for (int d = 0; d < dimension_; ++d) {
      unit[d] = double{v[d]} / norm;
    }
  }
  finalized_ = true;
  return Status::Ok();
}

double EmbeddingStore::Cosine(kb::ConceptRef a, kb::ConceptRef b) const {
  TENET_CHECK(finalized_) << "Cosine before Finalize";
  // A fired fetch fault behaves like a missing vector: zero similarity,
  // the same value a genuinely absent (zero-norm) embedding yields.
  const bool faulted = TENET_FAULT_POINT("embedding/fetch");
  TENET_OBSERVE_DEPENDENCY("embedding/fetch", !faulted);
  ops_.Record(!faulted);
  if (faulted) return 0.0;
  const double* ua = unit_data_.data() + Offset(a);
  const double* ub = unit_data_.data() + Offset(b);
  return ClampCosine(DotUnit(ua, ub, dimension_));
}

void EmbeddingStore::GatherUnit(std::span<const kb::ConceptRef> refs,
                                double* out) const {
  TENET_CHECK(finalized_) << "GatherUnit before Finalize";
  const bool faulted = TENET_FAULT_POINT("embedding/fetch");
  TENET_OBSERVE_DEPENDENCY("embedding/fetch", !faulted);
  ops_.Record(!faulted);
  const size_t row_bytes = static_cast<size_t>(dimension_) * sizeof(double);
  if (faulted) {
    std::memset(out, 0, refs.size() * row_bytes);
    return;
  }
  for (size_t i = 0; i < refs.size(); ++i) {
    std::memcpy(out + i * static_cast<size_t>(dimension_),
                unit_data_.data() + Offset(refs[i]), row_bytes);
  }
}

}  // namespace embedding
}  // namespace tenet
