#ifndef TENET_EMBEDDING_SIMILARITY_CACHE_H_
#define TENET_EMBEDDING_SIMILARITY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kb/types.h"
#include "obs/metrics.h"

namespace tenet {
namespace embedding {

// Tuning of a SimilarityCache.  Capacity is a byte budget, converted to an
// entry budget with a conservative per-entry cost estimate, so callers
// (the CLI's --similarity-cache-mb, the serving layer) can reason in
// memory rather than entry counts.
struct SimilarityCacheOptions {
  /// Approximate memory budget.  Ignored when max_entries is non-zero.
  size_t capacity_bytes = 8u << 20;
  /// Exact entry budget; 0 derives it from capacity_bytes.
  size_t max_entries = 0;
  /// Independent LRU shards (rounded up to a power of two).  More shards
  /// cut lock contention between serving workers at the cost of slightly
  /// uneven per-shard capacity.
  int num_shards = 8;
  /// Registry for the hit/miss/eviction counters
  /// (tenet_similarity_cache_ops_total{op=...}).  Null publishes to the
  /// process-wide default registry.
  obs::MetricsRegistry* metrics = nullptr;
};

// A sharded LRU cache of pairwise concept similarities, shared across
// documents of a serving workload.
//
// Pair-Linking (Phan et al., TKDE 2019) observes that collective-linking
// cost is dominated by pairwise coherence evaluations and that the same
// concept pairs recur across documents; REL (van Hulst et al., SIGIR 2020)
// builds its serving throughput on precomputed similarity machinery.  This
// cache is the in-process middle ground: the first document that compares
// a concept pair pays the dot product, every later document gets it for a
// hash probe.
//
// Keys are unordered concept pairs — (a, b) and (b, a) are the same entry,
// and the key ignores which mentions produced the comparison, so repeats
// both within and across documents hit.  Values must be deterministic
// functions of the key (DotUnit over the store's unit rows is), which
// makes a cached run bit-identical to an uncached one.
//
// Thread safety: every operation takes only its shard's mutex.  Two
// threads racing to fill the same key may both compute the value; both
// writes store the identical number, so the race is benign.
//
// Epochs: a serving-layer cache outlives live KB swaps, and a cached
// cosine is only valid for the substrate that computed it — generation N+1
// may carry different embedding rows for the same concept ids.  Every
// entry is therefore tagged with the epoch (KB generation id) that
// computed it, and a lookup under a different epoch is a miss.  A stale
// entry (older epoch than the lookup's) is erased on sight, so swaps
// invalidate lazily with no sweep; an entry *newer* than the lookup's
// epoch is left alone and never overwritten — requests still pinned to an
// old generation must not clobber the new generation's values.  The
// determinism contract then holds per epoch.  Epoch 0 (the default
// everywhere) is the single-substrate world, where staleness cannot
// arise and behavior is exactly the pre-epoch cache.
class SimilarityCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    size_t entries = 0;

    double HitRate() const {
      int64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  explicit SimilarityCache(SimilarityCacheOptions options = {});

  SimilarityCache(const SimilarityCache&) = delete;
  SimilarityCache& operator=(const SimilarityCache&) = delete;

  /// The cached similarity of {a, b} under `epoch`, refreshing its
  /// recency; nullopt on a miss.  An entry from an older epoch is erased
  /// and reported as a miss; one from a newer epoch is a miss but stays.
  /// Counts one hit or one miss.
  std::optional<double> Lookup(kb::ConceptRef a, kb::ConceptRef b,
                               uint64_t epoch = 0);

  /// Stores the similarity of {a, b} computed under `epoch`, evicting the
  /// shard's least recently used entry when it is full.  Overwriting an
  /// existing same-or-older-epoch key refreshes recency; an entry already
  /// holding a newer epoch is left untouched.
  void Insert(kb::ConceptRef a, kb::ConceptRef b, double similarity,
              uint64_t epoch = 0);

  /// Lookup, falling back to `compute()` + Insert on a miss.  `compute`
  /// runs outside the shard lock.
  template <typename Fn>
  double GetOrCompute(kb::ConceptRef a, kb::ConceptRef b, Fn&& compute,
                      uint64_t epoch = 0) {
    if (std::optional<double> hit = Lookup(a, b, epoch)) return *hit;
    double value = compute();
    Insert(a, b, value, epoch);
    return value;
  }

  Stats GetStats() const;

  size_t max_entries() const { return max_entries_per_shard_ * shards_.size(); }

 private:
  struct Entry {
    uint64_t key = 0;
    double value = 0.0;
    /// KB generation that computed `value`; see the epoch contract above.
    uint64_t epoch = 0;
  };

  struct Shard {
    std::mutex mu;
    // Most recently used at the front; the map points into the list.
    std::list<Entry> lru;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
  };

  static uint64_t PairKey(kb::ConceptRef a, kb::ConceptRef b);
  Shard& ShardOf(uint64_t key);
  const Shard& ShardOf(uint64_t key) const;

  size_t max_entries_per_shard_;
  uint64_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;

  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
};

}  // namespace embedding
}  // namespace tenet

#endif  // TENET_EMBEDDING_SIMILARITY_CACHE_H_
