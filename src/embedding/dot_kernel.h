#ifndef TENET_EMBEDDING_DOT_KERNEL_H_
#define TENET_EMBEDDING_DOT_KERNEL_H_

namespace tenet {
namespace embedding {

// The pairwise-similarity kernel of the coherence graph (Eqs. 3-5), over
// unit-normalized rows: cosine(a, b) is a pure dot product once both rows
// have been divided by their norms at Finalize() time.
//
// DotUnit reduces in a fixed blocked, multi-accumulator order: eight
// independent double accumulators over stride-8 blocks, a scalar tail, and
// a fixed pairwise tree for the horizontal sum.  The independent
// accumulators are what lets the compiler map the loop onto SIMD lanes
// without -ffast-math (the reduction order is part of the function's
// contract), and the fixed order is what makes the result deterministic:
// every caller — the per-pair Cosine() path, the tiled document kernel,
// the similarity cache's compute callback — gets bit-identical values for
// the same pair.
//
// The rows are double, not float: the unit matrix keeps full precision so
// the kernel's cosines stay within ~1e-14 of the historical
// dot(raw)/(norm*norm) arithmetic — close enough that no downstream
// near-tie (disambiguation order, candidate choice) ever flips.  A float
// matrix halves the bandwidth but drifts ~1e-6, which measurably changes
// linking decisions on tie-heavy corpora.
//
// `a` and `b` need not be aligned; `dim` may be any non-negative count.
double DotUnit(const double* a, const double* b, int dim);

/// Clamps a unit-row dot product to the cosine range [-1, 1] (rounding can
/// push |dot| a few ulps past 1).
inline double ClampCosine(double cosine) {
  if (cosine > 1.0) return 1.0;
  if (cosine < -1.0) return -1.0;
  return cosine;
}

}  // namespace embedding
}  // namespace tenet

#endif  // TENET_EMBEDDING_DOT_KERNEL_H_
