#ifndef TENET_EMBEDDING_TRAINER_H_
#define TENET_EMBEDDING_TRAINER_H_

#include "common/rng.h"
#include "embedding/embedding_store.h"
#include "kb/knowledge_base.h"

namespace tenet {
namespace embedding {

// Knobs of the structural embedding trainer.
struct TrainerOptions {
  /// Vector dimension.  32 keeps unrelated domains near-orthogonal while
  /// remaining fast on a laptop.
  int dimension = 32;
  /// Standard deviation of per-concept Gaussian noise around the domain
  /// centroid; larger = weaker intra-domain coherence.  The default is
  /// calibrated so intra-domain cosine lands near 0.5-0.65 and
  /// cross-domain near 0.1 — the regime of real graph embeddings, where
  /// coherence is informative but never free (semantic distances of
  /// related concepts are comparable to local prior distances).
  double noise = 0.70;
  /// Rounds of neighborhood smoothing over the fact graph.
  int smoothing_iterations = 1;
  /// Interpolation weight toward the neighborhood mean per round.
  double smoothing_alpha = 0.25;
  /// Weight of the shared per-fact component: each fact contributes one
  /// random direction added to its subject, object (and, damped, its
  /// predicate), giving fact partners a dedicated cosine boost on top of
  /// the domain structure — the pairwise signal PBG's training objective
  /// produces.  0 disables.
  double fact_component = 0.35;
};

// Produces deterministic structural embeddings from a finalized
// KnowledgeBase.  Substitutes the paper's PyTorch-BigGraph training
// (DESIGN.md §1): each concept starts near its domain centroid and is then
// smoothed toward its fact neighborhood, so that cosine similarity
// correlates with KB relatedness — the only property Equations 3-5 consume.
class StructuralEmbeddingTrainer {
 public:
  explicit StructuralEmbeddingTrainer(TrainerOptions options = {})
      : options_(options) {}

  /// Trains embeddings for every entity and predicate of `kb` (which must
  /// be finalized).  Deterministic given `rng`'s seed.
  EmbeddingStore Train(const kb::KnowledgeBase& kb, Rng& rng) const;

 private:
  TrainerOptions options_;
};

}  // namespace embedding
}  // namespace tenet

#endif  // TENET_EMBEDDING_TRAINER_H_
