#ifndef TENET_EMBEDDING_EMBEDDING_STORE_H_
#define TENET_EMBEDDING_EMBEDDING_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "kb/types.h"
#include "obs/metrics.h"

namespace tenet {
namespace embedding {

// Dense, contiguous storage of one fixed-dimension vector per KB concept —
// the in-process analogue of the paper's memory-mapped PyTorch-BigGraph
// array (Sec. 6.1): obtaining a vector is O(1) pointer arithmetic, and the
// pairwise relatedness used by the coherence graph is plain cosine
// similarity (Equations 3-5).
//
// Build phase: write through MutableVector, then Finalize().
// Query phase: Vector() / UnitVector() / Cosine() / GatherUnit().
//
// Finalize() stores, next to the raw matrix, a unit-normalized double copy
// (each row divided by its L2 norm; zero rows stay zero).  Cosine then
// degenerates to a pure dot product over unit rows, computed by the fixed
// blocked DotUnit reduction (dot_kernel.h) — the same kernel the coherence
// graph's batched path runs over gathered rows, so per-pair and batched
// similarities are bit-identical (and within ~1e-14 of the historical
// dot/norms arithmetic; see dot_kernel.h).  The copy triples the store's
// memory; DESIGN.md §10 discusses the tradeoff.
class EmbeddingStore {
 public:
  EmbeddingStore(int dimension, int32_t num_entities,
                 int32_t num_predicates);

  int dimension() const { return dimension_; }
  int32_t num_entities() const { return num_entities_; }
  int32_t num_predicates() const { return num_predicates_; }

  /// Writable view of the vector of `ref`.  Only before Finalize().
  std::span<float> MutableVector(kb::ConceptRef ref);

  /// Read-only view of the raw vector of `ref`.
  std::span<const float> Vector(kb::ConceptRef ref) const;

  /// Read-only view of the unit-normalized vector of `ref` (all zeros for
  /// a zero vector).  Only after Finalize().
  std::span<const double> UnitVector(kb::ConceptRef ref) const;

  /// Builds the unit-normalized copy; must be called once after all writes.
  void Finalize();
  bool finalized() const { return finalized_; }

  /// Bulk load + finalize in one pass: copies `count_floats` floats from
  /// `matrix` (row-major, entities then predicates; any alignment — the
  /// snapshot loader points this straight at an mmapped file) into the raw
  /// matrix and builds the unit-normalized rows from the same sweep, so a
  /// snapshot load pays exactly one copy instead of per-row reads plus a
  /// Finalize re-scan.  `count_floats` must equal
  /// dimension() * (num_entities() + num_predicates()).  DataLoss on
  /// non-finite payloads (a NaN row would silently poison every cosine);
  /// the store is left un-finalized on error.
  Status LoadMatrix(const void* matrix, size_t count_floats);

  /// Cosine similarity in [-1, 1]; zero vectors yield 0.  One dependency
  /// observation / fault-point probe per call — the batched path below is
  /// the cheap way to fetch a whole document's worth.
  double Cosine(kb::ConceptRef a, kb::ConceptRef b) const;

  /// The paper's global semantic distance 1 - cos (Equations 3-5),
  /// clamped to [0, 2].
  double CosineDistance(kb::ConceptRef a, kb::ConceptRef b) const {
    return 1.0 - Cosine(a, b);
  }

  /// Batched fetch: copies the unit rows of `refs` into `out` (row-major,
  /// refs.size() x dimension(), caller-allocated).  The whole gather is a
  /// single dependency operation — one fault-point probe and one
  /// observation, however many rows — so a document's coherence stage costs
  /// O(1) observability work instead of O(C^2).  A fired fault behaves
  /// like every vector missing: `out` is zero-filled and all similarities
  /// over it are 0, the same value Cosine() reports under a fired fault.
  void GatherUnit(std::span<const kb::ConceptRef> refs, double* out) const;

  /// Re-points the store's dependency-operation counters
  /// (tenet_dependency_operations_total{dependency="embedding/fetch"}) at
  /// `registry` (null: back to the process-wide default).  Tests inject a
  /// per-test registry; production stores publish to the default one.
  void set_metrics_registry(obs::MetricsRegistry* registry) {
    ops_ = obs::DependencyOpCounters("embedding/fetch", registry);
  }

 private:
  size_t Offset(kb::ConceptRef ref) const;
  size_t RowIndex(kb::ConceptRef ref) const;

  int dimension_;
  int32_t num_entities_;
  int32_t num_predicates_;
  std::vector<float> data_;        // entities first, then predicates
  std::vector<double> unit_data_;  // unit-normalized copy, by Finalize()
  bool finalized_ = false;
  obs::DependencyOpCounters ops_;
};

}  // namespace embedding
}  // namespace tenet

#endif  // TENET_EMBEDDING_EMBEDDING_STORE_H_
