#ifndef TENET_EMBEDDING_EMBEDDING_STORE_H_
#define TENET_EMBEDDING_EMBEDDING_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "kb/types.h"

namespace tenet {
namespace embedding {

// Dense, contiguous storage of one fixed-dimension vector per KB concept —
// the in-process analogue of the paper's memory-mapped PyTorch-BigGraph
// array (Sec. 6.1): obtaining a vector is O(1) pointer arithmetic, and the
// pairwise relatedness used by the coherence graph is plain cosine
// similarity (Equations 3-5).
//
// Build phase: write through MutableVector, then Finalize() (caches norms).
// Query phase: Vector() / Cosine().
class EmbeddingStore {
 public:
  EmbeddingStore(int dimension, int32_t num_entities,
                 int32_t num_predicates);

  int dimension() const { return dimension_; }
  int32_t num_entities() const { return num_entities_; }
  int32_t num_predicates() const { return num_predicates_; }

  /// Writable view of the vector of `ref`.  Only before Finalize().
  std::span<float> MutableVector(kb::ConceptRef ref);

  /// Read-only view of the vector of `ref`.
  std::span<const float> Vector(kb::ConceptRef ref) const;

  /// Caches vector norms; must be called once after all writes.
  void Finalize();
  bool finalized() const { return finalized_; }

  /// Cosine similarity in [-1, 1]; zero vectors yield 0.
  double Cosine(kb::ConceptRef a, kb::ConceptRef b) const;

  /// The paper's global semantic distance 1 - cos (Equations 3-5),
  /// clamped to [0, 2].
  double CosineDistance(kb::ConceptRef a, kb::ConceptRef b) const {
    return 1.0 - Cosine(a, b);
  }

 private:
  size_t Offset(kb::ConceptRef ref) const;
  size_t NormIndex(kb::ConceptRef ref) const;

  int dimension_;
  int32_t num_entities_;
  int32_t num_predicates_;
  std::vector<float> data_;    // entities first, then predicates
  std::vector<double> norms_;  // cached by Finalize()
  bool finalized_ = false;
};

}  // namespace embedding
}  // namespace tenet

#endif  // TENET_EMBEDDING_EMBEDDING_STORE_H_
