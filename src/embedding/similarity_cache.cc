#include "embedding/similarity_cache.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"

namespace tenet {
namespace embedding {
namespace {

// Rough heap cost of one resident entry: the list node (key + value + two
// links) plus the hash-map node and bucket share.  Deliberately on the
// high side so a byte budget is an upper bound, not a target to overshoot.
constexpr size_t kApproxEntryBytes = 96;

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// splitmix64 finalizer: concept-pair keys are near-sequential small ids,
// so they need real mixing before shard selection and bucketing.
uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

SimilarityCache::SimilarityCache(SimilarityCacheOptions options) {
  TENET_CHECK_GT(options.num_shards, 0);
  size_t num_shards =
      RoundUpPowerOfTwo(static_cast<size_t>(options.num_shards));
  size_t total_entries = options.max_entries != 0
                             ? options.max_entries
                             : options.capacity_bytes / kApproxEntryBytes;
  // At least one entry per shard, or the cache would be all eviction.
  max_entries_per_shard_ =
      std::max<size_t>(1, (total_entries + num_shards - 1) / num_shards);
  shard_mask_ = num_shards - 1;
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }

  obs::MetricsRegistry* registry = options.metrics != nullptr
                                       ? options.metrics
                                       : obs::MetricsRegistry::Default();
  constexpr const char* kHelp =
      "Similarity cache operations, by outcome (hit/miss on lookups, evict "
      "on capacity displacement).";
  hits_ = registry->GetCounter("tenet_similarity_cache_ops_total", kHelp,
                               obs::LabelPair("op", "hit"));
  misses_ = registry->GetCounter("tenet_similarity_cache_ops_total", kHelp,
                                 obs::LabelPair("op", "miss"));
  evictions_ = registry->GetCounter("tenet_similarity_cache_ops_total", kHelp,
                                    obs::LabelPair("op", "evict"));
}

uint64_t SimilarityCache::PairKey(kb::ConceptRef a, kb::ConceptRef b) {
  // Canonical unordered pair: the smaller ref first, each ref packed as
  // (kind bit | 31-bit id).  Ids are dense non-negative int32s well below
  // 2^31, so the packing is collision-free.
  if (b < a) std::swap(a, b);
  uint64_t pa = (static_cast<uint64_t>(a.kind == kb::ConceptRef::Kind::kPredicate)
                 << 31) |
                static_cast<uint32_t>(a.id);
  uint64_t pb = (static_cast<uint64_t>(b.kind == kb::ConceptRef::Kind::kPredicate)
                 << 31) |
                static_cast<uint32_t>(b.id);
  return (pa << 32) | pb;
}

SimilarityCache::Shard& SimilarityCache::ShardOf(uint64_t key) {
  return *shards_[MixKey(key) & shard_mask_];
}

const SimilarityCache::Shard& SimilarityCache::ShardOf(uint64_t key) const {
  return *shards_[MixKey(key) & shard_mask_];
}

std::optional<double> SimilarityCache::Lookup(kb::ConceptRef a,
                                              kb::ConceptRef b,
                                              uint64_t epoch) {
  const uint64_t key = PairKey(a, b);
  Shard& shard = ShardOf(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      if (it->second->epoch == epoch) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        hits_->Increment();
        return it->second->value;
      }
      if (it->second->epoch < epoch) {
        // Stale: computed by a superseded generation.  Erase on sight so a
        // swap invalidates lazily, key by key, with no sweep.
        shard.lru.erase(it->second);
        shard.index.erase(it);
      }
      // A newer entry than this lookup's epoch stays: a request still
      // pinned to an old generation just recomputes for itself.
    }
  }
  misses_->Increment();
  return std::nullopt;
}

void SimilarityCache::Insert(kb::ConceptRef a, kb::ConceptRef b,
                             double similarity, uint64_t epoch) {
  const uint64_t key = PairKey(a, b);
  Shard& shard = ShardOf(key);
  int64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      if (it->second->epoch > epoch) return;  // never regress an entry
      it->second->value = similarity;
      it->second->epoch = epoch;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.push_front(Entry{key, similarity, epoch});
    shard.index.emplace(key, shard.lru.begin());
    while (shard.lru.size() > max_entries_per_shard_) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      ++evicted;
    }
  }
  if (evicted > 0) evictions_->Increment(evicted);
}

SimilarityCache::Stats SimilarityCache::GetStats() const {
  Stats stats;
  stats.hits = hits_->Value();
  stats.misses = misses_->Value();
  stats.evictions = evictions_->Value();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace embedding
}  // namespace tenet
