#include "embedding/dot_kernel.h"

namespace tenet {
namespace embedding {

// Deliberately out-of-line, in this one TU: every caller shares the one
// compiled reduction, so no per-TU flag difference (-ffp-contract, -O
// level) can ever make two call sites disagree on a pair's similarity.
double DotUnit(const double* a, const double* b, int dim) {
  constexpr int kLanes = 8;
  double acc[kLanes] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  int d = 0;
  for (; d + kLanes <= dim; d += kLanes) {
    for (int l = 0; l < kLanes; ++l) {
      acc[l] += a[d + l] * b[d + l];
    }
  }
  double tail = 0.0;
  for (; d < dim; ++d) tail += a[d] * b[d];
  return (((acc[0] + acc[1]) + (acc[2] + acc[3])) +
          ((acc[4] + acc[5]) + (acc[6] + acc[7]))) +
         tail;
}

}  // namespace embedding
}  // namespace tenet
