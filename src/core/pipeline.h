#ifndef TENET_CORE_PIPELINE_H_
#define TENET_CORE_PIPELINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/canopy.h"
#include "core/coherence_graph.h"
#include "core/disambiguator.h"
#include "core/mention.h"
#include "core/tree_cover.h"
#include "embedding/embedding_store.h"
#include "kb/knowledge_base.h"
#include "text/extraction.h"
#include "text/gazetteer.h"

namespace tenet {
namespace core {

// End-to-end configuration of TENET.
struct TenetOptions {
  CoherenceGraphOptions graph;
  CanopyOptions canopy;
  DisambiguatorOptions disambiguator;
  /// Tree-cost bound B = bound_factor * |M| (the paper sets B to |M|).
  double bound_factor = 1.0;
  /// On a failure warning (B < B*), B doubles up to this many times.
  int max_bound_retries = 6;
};

// One linked mention of the final output.
struct LinkedConcept {
  int mention_id = -1;
  std::string surface;
  Mention::Kind kind = Mention::Kind::kNoun;
  kb::ConceptRef concept_ref;
  /// Prior P(c|m) of the chosen candidate (diagnostic).
  double prior = 0.0;
};

// Stage timings in milliseconds (Figure 7).
struct PipelineTimings {
  double extract_ms = 0.0;
  double graph_ms = 0.0;
  double cover_ms = 0.0;
  double disambiguate_ms = 0.0;

  double TotalMs() const {
    return extract_ms + graph_ms + cover_ms + disambiguate_ms;
  }
};

// Full output of linking one document.
struct LinkingResult {
  /// The mention universe considered (short mentions, long-text variants,
  /// relational phrases).
  MentionSet mentions;
  /// Mentions linked to a KB concept.
  std::vector<LinkedConcept> links;
  /// Selected mentions reported as isolated / emerging concepts (no
  /// linkable counterpart in the KB).
  std::vector<int> isolated_mentions;
  /// Mention-detection output: ids of linked + isolated mentions.
  std::vector<int> selected_mentions;
  /// The bound B that produced the cover.
  double used_bound = 0.0;
  TreeCoverStats cover_stats;
  PipelineTimings timings;
};

// TENET: tree-cover based joint entity and relation linking.
//
// Example:
//   TenetPipeline tenet(&world.kb, &embeddings, &world.gazetteer);
//   auto result = tenet.LinkDocument("Michael Jordan studies ...");
//   for (const LinkedConcept& link : result->links) ...
class TenetPipeline {
 public:
  /// All pointers must be non-null, finalized, and outlive the pipeline.
  TenetPipeline(const kb::KnowledgeBase* kb,
                const embedding::EmbeddingStore* embeddings,
                const text::Gazetteer* gazetteer, TenetOptions options = {});

  /// Runs the whole stack: extraction -> mention set -> coherence graph ->
  /// tree cover -> disambiguation.
  Result<LinkingResult> LinkDocument(std::string_view document_text) const;

  /// Starts from a ready extraction (used by evaluations that fix the
  /// mention detection stage).
  Result<LinkingResult> LinkExtraction(
      const text::ExtractionResult& extraction) const;

  /// Starts from a ready mention universe (used by the disambiguation-only
  /// evaluation, where gold mentions are given as input).
  Result<LinkingResult> LinkMentionSet(MentionSet mentions) const;

  const TenetOptions& options() const { return options_; }

 private:
  const kb::KnowledgeBase* kb_;
  const embedding::EmbeddingStore* embeddings_;
  const text::Gazetteer* gazetteer_;
  TenetOptions options_;
  CoherenceGraphBuilder graph_builder_;
  TreeCoverSolver solver_;
  Disambiguator disambiguator_;
};

}  // namespace core
}  // namespace tenet

#endif  // TENET_CORE_PIPELINE_H_
