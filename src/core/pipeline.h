#ifndef TENET_CORE_PIPELINE_H_
#define TENET_CORE_PIPELINE_H_

#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "core/canopy.h"
#include "core/link_context.h"
#include "core/coherence_graph.h"
#include "core/disambiguator.h"
#include "core/mention.h"
#include "core/tree_cover.h"
#include "embedding/embedding_store.h"
#include "kb/knowledge_base.h"
#include "text/extraction.h"
#include "text/gazetteer.h"

namespace tenet {
namespace core {

// End-to-end configuration of TENET.
struct TenetOptions {
  CoherenceGraphOptions graph;
  CanopyOptions canopy;
  DisambiguatorOptions disambiguator;
  /// Tree-cost bound B = bound_factor * |M| (the paper sets B to |M|).
  double bound_factor = 1.0;
  /// On a failure warning (B < B*), B grows per this policy (the paper's
  /// doubling, capped).  Replaces the former ad-hoc `max_bound_retries`.
  RetryPolicy bound_retry;
  /// Per-document wall-clock budget in milliseconds, measured from the
  /// Link* call.  Infinite (the default) disables the deadline.  An
  /// explicit Deadline argument to Link* overrides this.
  double deadline_ms = std::numeric_limits<double>::infinity();
  /// When true (the default), deadline expiry or bound-retry exhaustion
  /// degrades to per-canopy prior-only disambiguation instead of failing
  /// the document.  When false those conditions surface as
  /// kDeadlineExceeded / the solver's error.
  bool degrade_to_prior = true;
  /// Hostile-input guardrails applied by LinkDocument before any linking
  /// work (DESIGN.md §13).  The defaults never fire on clean corpora; the
  /// candidate cap additionally clamps
  /// graph.max_candidates_per_mention at construction.
  text::TextLimits limits;
};

// How a LinkingResult was produced — the rung of the degradation ladder
// that served the document.  Attached to every result so the evaluation
// harness can report degraded-vs-full counts.
struct DegradationInfo {
  enum class Mode {
    /// The full tree-cover pipeline ran to completion.
    kFull = 0,
    /// Per-canopy prior-only disambiguation (baseline-quality answer):
    /// each mention group keeps its most-confident canopy by candidate
    /// priors, and every mention links to its top-prior candidate.
    kPriorOnly = 1,
  };

  Mode mode = Mode::kFull;
  /// Human-readable cause, e.g. "deadline expired before the coherence
  /// stage" or the tree-cover solver's terminal status.  Empty when full.
  std::string reason;
  /// Number of pipeline stages (graph, cover, disambiguation) that were
  /// skipped or replaced by the fallback: 0 for a full run, up to 3 when
  /// the budget was exhausted before the coherence stage.
  int stages_degraded = 0;

  bool degraded() const { return mode != Mode::kFull; }
};

/// Canonical lower_snake_case name of a degradation mode ("full",
/// "prior_only") for logs and harness tables.
std::string_view DegradationModeToString(DegradationInfo::Mode mode);

// One linked mention of the final output.
struct LinkedConcept {
  int mention_id = -1;
  std::string surface;
  Mention::Kind kind = Mention::Kind::kNoun;
  kb::ConceptRef concept_ref;
  /// Prior P(c|m) of the chosen candidate (diagnostic).
  double prior = 0.0;
};

// Stage timings in milliseconds (Figure 7).
struct PipelineTimings {
  double extract_ms = 0.0;
  double graph_ms = 0.0;
  double cover_ms = 0.0;
  double disambiguate_ms = 0.0;

  double TotalMs() const {
    return extract_ms + graph_ms + cover_ms + disambiguate_ms;
  }
};

// Full output of linking one document.
struct LinkingResult {
  /// The mention universe considered (short mentions, long-text variants,
  /// relational phrases).
  MentionSet mentions;
  /// Mentions linked to a KB concept.
  std::vector<LinkedConcept> links;
  /// Selected mentions reported as isolated / emerging concepts (no
  /// linkable counterpart in the KB).
  std::vector<int> isolated_mentions;
  /// Mention-detection output: ids of linked + isolated mentions.
  std::vector<int> selected_mentions;
  /// The bound B that produced the cover (0 when the cover stage was
  /// degraded away).
  double used_bound = 0.0;
  TreeCoverStats cover_stats;
  PipelineTimings timings;
  /// Which rung of the degradation ladder produced this result.
  DegradationInfo degradation;
};

// TENET: tree-cover based joint entity and relation linking.
//
// Example:
//   TenetPipeline tenet(&world.kb, &embeddings, &world.gazetteer);
//   auto result = tenet.LinkDocument("Michael Jordan studies ...");
//   for (const LinkedConcept& link : result->links) ...
//
// Thread safety: a constructed pipeline is immutable — options and the
// per-stage components are fixed at construction, the KB / embedding /
// gazetteer substrate is read-only, and every Link* call works on its own
// stack state.  Concurrent Link* calls on one pipeline are therefore safe
// (the serving layer's workers share a single instance); the substrate
// must simply not be mutated while linking is in flight.
class TenetPipeline {
 public:
  /// Links against any KB substrate behind the KbView contract (flat or
  /// sharded).  The view is shared-owned; `gazetteer` must be non-null and
  /// outlive the pipeline.
  TenetPipeline(std::shared_ptr<const kb::KbView> view,
                const text::Gazetteer* gazetteer, TenetOptions options = {});

  /// Convenience over the flat substrate.  All pointers must be non-null,
  /// finalized, and outlive the pipeline.
  TenetPipeline(const kb::KnowledgeBase* kb,
                const embedding::EmbeddingStore* embeddings,
                const text::Gazetteer* gazetteer, TenetOptions options = {});

  /// Runs the whole stack: extraction -> mention set -> coherence graph ->
  /// tree cover -> disambiguation.  Per-request knobs travel in the
  /// LinkContext: a default-constructed context starts the budget
  /// configured by TenetOptions::deadline_ms at call time; a context
  /// deadline overrides it; a context trace records the stage spans,
  /// cover retries and degradation rungs.
  ///
  /// Degradation ladder (when options().degrade_to_prior): the full
  /// tree-cover pipeline is attempted first; if the deadline expires or
  /// the bound retries are exhausted, the document is served by per-canopy
  /// prior-only disambiguation and the result's DegradationInfo records
  /// the mode, cause, and how many stages were degraded.  A degraded
  /// answer is still ok() — graceful degradation is an answer, not an
  /// error.
  Result<LinkingResult> LinkDocument(std::string_view document_text,
                                     const LinkContext& context = {}) const;

  /// Starts from a ready extraction (used by evaluations that fix the
  /// mention detection stage).
  Result<LinkingResult> LinkExtraction(const text::ExtractionResult& extraction,
                                       const LinkContext& context = {}) const;

  /// Starts from a ready mention universe (used by the disambiguation-only
  /// evaluation, where gold mentions are given as input).
  Result<LinkingResult> LinkMentionSet(MentionSet mentions,
                                       const LinkContext& context = {}) const;

  const TenetOptions& options() const { return options_; }
  const kb::KbView& view() const { return *view_; }

 private:
  /// The deadline implied by options().deadline_ms, started now.
  Deadline DefaultDeadline() const;

  /// The real pipeline body.  `timings` carries stage timings measured
  /// before the mention set existed (LinkDocument's extraction stage), so
  /// every completion path reports the document's full latency.
  Result<LinkingResult> LinkMentionSetWithTimings(MentionSet mentions,
                                                  const LinkContext& context,
                                                  PipelineTimings timings) const;

  /// Serves the document from priors alone, bypassing the coherence graph
  /// entirely (candidates come straight from the KB alias index).
  Result<LinkingResult> PriorOnlyFromMentions(MentionSet mentions,
                                              std::string reason,
                                              int stages_degraded,
                                              PipelineTimings timings,
                                              const LinkContext& context) const;

  /// Serves the document from priors using the candidates already
  /// materialized in `cg` (the graph stage completed before the budget ran
  /// out).
  Result<LinkingResult> PriorOnlyFromGraph(const CoherenceGraph& cg,
                                           std::string reason,
                                           int stages_degraded,
                                           PipelineTimings timings,
                                           const LinkContext& context) const;

  /// Shared tail of both prior-only paths: mode bookkeeping, the
  /// degradation counters and latency observations, and the trace record
  /// of the rung taken.
  void FinishPriorOnly(std::string reason, int stages_degraded,
                       PipelineTimings timings, const LinkContext& context,
                       LinkingResult* result) const;

  std::shared_ptr<const kb::KbView> view_;
  const text::Gazetteer* gazetteer_;
  TenetOptions options_;
  CoherenceGraphBuilder graph_builder_;
  TreeCoverSolver solver_;
  Disambiguator disambiguator_;
};

}  // namespace core
}  // namespace tenet

#endif  // TENET_CORE_PIPELINE_H_
