#include "core/canopy.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"

namespace tenet {
namespace core {
namespace {

// Joins two surfaces with the connector text between them.  Punctuation
// connectors bind to the left surface ("Winter Crown: Harvest Elegy");
// word connectors are space-separated.
std::string JoinSurfaces(const std::string& left,
                         const text::Connector& connector,
                         const std::string& right) {
  if (connector.kind == text::ConnectorKind::kPunctuation) {
    return left + connector.joining_text + " " + right;
  }
  return left + " " + connector.joining_text + " " + right;
}

void SortUnique(std::vector<int>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

int64_t NumContiguousSegmentations(int n) {
  if (n <= 1) return 1;
  return int64_t{1} << (n - 1);
}

MentionSet BuildMentionSet(const text::ExtractionResult& extraction,
                           const text::Gazetteer* gazetteer,
                           const CanopyOptions& options) {
  TENET_CHECK(gazetteer != nullptr);
  MentionSet set;

  // ---- Step 1: runs of feature-linked short mentions ----------------------
  const int num_short = static_cast<int>(extraction.mentions.size());
  std::vector<std::pair<int, int>> runs;  // [begin, end) into extraction
  int begin = 0;
  while (begin < num_short) {
    int end = begin;
    while (end + 1 < num_short && extraction.link_after[end].has_value()) {
      ++end;
    }
    runs.emplace_back(begin, end + 1);
    begin = end + 1;
  }

  // Coreference canonicalization for singleton groups: one mention per
  // lower-cased surface across the document.
  std::unordered_map<std::string, int> singleton_by_surface;

  for (const auto& [run_begin, run_end] : runs) {
    const int n = run_end - run_begin;
    if (n == 1) {
      const text::ShortMention& sm = extraction.mentions[run_begin];
      std::string key = AsciiToLower(sm.surface);
      auto it = singleton_by_surface.find(key);
      if (it != singleton_by_surface.end()) {
        Mention& existing = set.mentions[it->second];
        existing.sentences.push_back(sm.sentence);
        SortUnique(existing.sentences);
        continue;
      }
      Mention mention;
      mention.kind = Mention::Kind::kNoun;
      mention.surface = sm.surface;
      mention.type = sm.type;
      mention.sentences = {sm.sentence};
      mention.group = set.num_groups();
      int id = set.num_mentions();
      set.mentions.push_back(std::move(mention));
      singleton_by_surface.emplace(std::move(key), id);

      MentionGroup group;
      group.members = {id};
      group.short_mentions = {id};
      group.canopies = {Canopy{{id}}};
      set.groups.push_back(std::move(group));
      continue;
    }

    // ---- Multi-mention group: enumerate canopies -------------------------
    const int group_id = set.num_groups();
    set.groups.emplace_back();
    // Mentions of a linked run share one sentence (links never cross
    // sentence boundaries).
    const int sentence = extraction.mentions[run_begin].sentence;

    std::unordered_map<std::string, int> variant_by_surface;
    auto intern_mention = [&](std::string surface,
                              std::optional<kb::EntityType> type) -> int {
      std::string key = AsciiToLower(surface);
      auto it = variant_by_surface.find(key);
      if (it != variant_by_surface.end()) return it->second;
      Mention mention;
      mention.kind = Mention::Kind::kNoun;
      mention.surface = std::move(surface);
      mention.type = type;
      mention.sentences = {sentence};
      mention.group = group_id;
      int id = set.num_mentions();
      set.mentions.push_back(std::move(mention));
      variant_by_surface.emplace(std::move(key), id);
      set.groups[group_id].members.push_back(id);
      return id;
    };

    // Short mentions first (every canopy is built from them).
    std::vector<int> short_ids;
    short_ids.reserve(n);
    for (int i = run_begin; i < run_end; ++i) {
      const text::ShortMention& sm = extraction.mentions[i];
      short_ids.push_back(intern_mention(sm.surface, sm.type));
    }
    set.groups[group_id].short_mentions = short_ids;

    // A segmentation is a bitmask over the n-1 boundaries: bit b set means
    // "merge across boundary b" (mentions b and b+1 joined by their
    // connector).  Mask 0 is the all-short canopy; the all-ones mask the
    // fully merged long-text mention.
    std::vector<uint64_t> masks;
    if (!options.enable_long_variants) {
      masks = {0};
    } else if (n <= options.max_group_size_for_full_enumeration) {
      const uint64_t limit = uint64_t{1} << (n - 1);
      for (uint64_t mask = 0; mask < limit; ++mask) masks.push_back(mask);
    } else {
      masks = {0, (uint64_t{1} << (n - 1)) - 1};
    }

    auto block_surface = [&](int first, int last) -> std::string {
      std::string surface = extraction.mentions[run_begin + first].surface;
      for (int i = first; i < last; ++i) {
        const std::optional<text::Connector>& conn =
            extraction.link_after[run_begin + i];
        TENET_CHECK(conn.has_value());
        surface = JoinSurfaces(
            surface, *conn, extraction.mentions[run_begin + i + 1].surface);
      }
      return surface;
    };

    for (uint64_t mask : masks) {
      Canopy canopy;
      int block_first = 0;
      for (int b = 0; b < n; ++b) {
        bool merge_right = b + 1 < n && (mask & (uint64_t{1} << b)) != 0;
        if (!merge_right) {
          if (block_first == b) {
            canopy.mentions.push_back(short_ids[b]);
          } else {
            std::string surface = block_surface(block_first, b);
            std::optional<kb::EntityType> type =
                gazetteer->LookupType(surface);
            canopy.mentions.push_back(intern_mention(std::move(surface),
                                                     type));
          }
          block_first = b + 1;
        }
      }
      set.groups[group_id].canopies.push_back(std::move(canopy));
    }
  }

  // ---- Relational mentions: one per distinct lemma ------------------------
  std::unordered_map<std::string, int> relation_by_lemma;
  for (const text::ExtractedRelation& rel : extraction.relations) {
    auto it = relation_by_lemma.find(rel.lemma);
    if (it != relation_by_lemma.end()) {
      Mention& existing = set.mentions[it->second];
      existing.sentences.push_back(rel.sentence);
      SortUnique(existing.sentences);
      continue;
    }
    Mention mention;
    mention.kind = Mention::Kind::kRelational;
    mention.surface = rel.lemma;
    mention.sentences = {rel.sentence};
    mention.group = set.num_groups();
    int id = set.num_mentions();
    set.mentions.push_back(std::move(mention));
    relation_by_lemma.emplace(rel.lemma, id);

    MentionGroup group;
    group.members = {id};
    group.short_mentions = {id};
    group.canopies = {Canopy{{id}}};
    set.groups.push_back(std::move(group));
  }
  return set;
}

}  // namespace core
}  // namespace tenet
