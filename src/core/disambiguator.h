#ifndef TENET_CORE_DISAMBIGUATOR_H_
#define TENET_CORE_DISAMBIGUATOR_H_

#include <unordered_map>
#include <vector>

#include "core/coherence_graph.h"
#include "core/tree_cover.h"

namespace tenet {
namespace core {

// Output of Algorithm 5: the mapping Gamma from selected mentions to the
// concept chosen for each.
struct DisambiguationResult {
  /// mention id -> selected concept node (coherence-graph node id).
  std::unordered_map<int, int> selected_node;
  /// Groups whose canopy completed, i.e. were resolved before the edge
  /// stream ran dry.
  std::vector<bool> group_resolved;
  /// Index of the completed canopy per group, or -1 when unresolved.
  std::vector<int> winning_canopy;

  bool IsLinked(int mention) const {
    return selected_node.count(mention) > 0;
  }
};

// Ablation knobs of the disambiguator.  The defaults are the published
// algorithm; each flag disables one design decision so the ablation
// benches can quantify it (DESIGN.md §7).
struct DisambiguatorOptions {
  /// Global Kruskal order across the whole cover.  When false, each tree
  /// T_i is swept separately in mention order — the "MST per tree"
  /// alternative Sec. 5.2 argues against (processing order then biases
  /// the results).
  bool global_kruskal_order = true;
  /// Among equal-weight edges, prefer the more informative (longer)
  /// mentions ("Fellow of the AAAS" over "Fellow").
  bool informative_tie_break = true;
  /// Pruning strategy 4: stop once every mention group is resolved.
  bool early_termination = true;
};

// The greedy knowledge disambiguation of Sec. 5.2 (Algorithm 5): a
// Kruskal-style sweep over the tree cover's edges in non-decreasing weight
// order, with the paper's four pruning strategies:
//   1. one concept per mention (later candidates of a linked mention are
//      skipped);
//   2. edges whose concept's mention is already linked are discarded
//      unless the linked endpoint pulls in the other side;
//   3. one canopy per mention group (mentions of competing canopies are
//      dropped once a canopy completes);
//   4. early termination once every group is resolved.
class Disambiguator {
 public:
  explicit Disambiguator(DisambiguatorOptions options = {})
      : options_(options) {}

  DisambiguationResult Run(const CoherenceGraph& cg,
                           const TreeCover& cover) const;

  const DisambiguatorOptions& options() const { return options_; }

 private:
  DisambiguatorOptions options_;
};

}  // namespace core
}  // namespace tenet

#endif  // TENET_CORE_DISAMBIGUATOR_H_
