#ifndef TENET_CORE_LINK_CONTEXT_H_
#define TENET_CORE_LINK_CONTEXT_H_

#include <cstdint>
#include <optional>

#include "common/deadline.h"
#include "obs/trace.h"

namespace tenet {
namespace embedding {
class SimilarityCache;
}  // namespace embedding

namespace core {

// The per-request envelope of every Link* call — the one place a request's
// cross-cutting knobs live, so adding one (a priority, a cache hint, a
// sampling decision) never again multiplies the Link* overload set the way
// the raw Deadline argument did.
//
// A default-constructed LinkContext means "the callee's configured
// policy": no deadline override, no tracing.  LinkContext is a cheap value
// type; pass it by const reference down the pipeline.
struct LinkContext {
  /// Compute budget for this request.  Unset leaves the callee's own
  /// deadline policy in charge (TenetOptions::deadline_ms for the
  /// pipeline, ServingOptions::default_deadline_ms for the service);
  /// an explicitly set deadline — including Deadline::Expired(), the
  /// serving layer's route-to-degraded signal — overrides it.
  std::optional<Deadline> deadline;

  /// Optional per-request trace.  When non-null, the pipeline records its
  /// stage spans, cover retries and degradation rungs into it.  The trace
  /// must outlive the call and is written from the serving thread of this
  /// request only (Trace is deliberately not thread-safe).
  obs::Trace* trace = nullptr;

  /// Optional cross-document pairwise-similarity cache for this request's
  /// coherence stage.  When non-null it overrides the pipeline's
  /// statically configured cache (CoherenceGraphOptions::similarity_cache);
  /// the serving layer attaches its own, shared across every request it
  /// serves, so recurring concept pairs are computed once per workload.
  /// SimilarityCache is thread-safe and must outlive the call.
  embedding::SimilarityCache* similarity_cache = nullptr;

  /// KB-generation epoch of this request's similarity lookups.  A shared
  /// cache outlives KB swaps, and a cached cosine is only valid for the
  /// substrate that computed it — so entries are tagged with this value
  /// and a lookup under a different epoch is a miss (see SimilarityCache).
  /// The serving layer sets it to the pinned generation's id; 0 (the
  /// default) is the single-substrate world where staleness cannot arise.
  uint64_t similarity_epoch = 0;

  /// The deadline this request should run under, given the callee's
  /// default policy.
  Deadline deadline_or(const Deadline& fallback) const {
    return deadline.has_value() ? *deadline : fallback;
  }

  static LinkContext WithDeadline(Deadline deadline) {
    LinkContext context;
    context.deadline = deadline;
    return context;
  }

  static LinkContext WithTrace(obs::Trace* trace) {
    LinkContext context;
    context.trace = trace;
    return context;
  }
};

}  // namespace core
}  // namespace tenet

#endif  // TENET_CORE_LINK_CONTEXT_H_
