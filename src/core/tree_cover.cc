#include "core/tree_cover.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/dependency_health.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "core/tree_split.h"
#include "graph/dijkstra.h"
#include "graph/hopcroft_karp.h"
#include "graph/mst.h"
#include "graph/tree.h"
#include "obs/metrics.h"

namespace tenet {
namespace core {
namespace {

// Accumulates distinct edges/nodes of one cover tree.
class CoverTreeAccumulator {
 public:
  explicit CoverTreeAccumulator(int root) {
    tree_.root = root;
    AddNode(root);
  }

  void AddNode(int node) {
    if (seen_nodes_.insert(node).second) tree_.nodes.push_back(node);
  }

  void AddEdge(int u, int v, double weight) {
    uint64_t lo = static_cast<uint64_t>(std::min(u, v));
    uint64_t hi = static_cast<uint64_t>(std::max(u, v));
    if (!seen_edges_.insert((hi << 32) | lo).second) return;
    tree_.edges.push_back(graph::Edge{u, v, weight});
    tree_.weight += weight;
    AddNode(u);
    AddNode(v);
  }

  void AddTree(const graph::RootedTree& t) {
    AddNode(t.root());
    for (const graph::TreeEdge& e : t.edges()) {
      AddEdge(e.parent, e.child, e.weight);
    }
  }

  CoverTree Take() { return std::move(tree_); }

 private:
  CoverTree tree_;
  std::unordered_set<int> seen_nodes_;
  std::unordered_set<uint64_t> seen_edges_;
};

}  // namespace

double TreeCover::Cost() const {
  double cost = 0.0;
  for (const CoverTree& t : trees) cost = std::max(cost, t.weight);
  return cost;
}

int TreeCover::TotalEdges() const {
  int total = 0;
  for (const CoverTree& t : trees) total += static_cast<int>(t.edges.size());
  return total;
}

Result<TreeCover> TreeCoverSolver::Solve(const CoherenceGraph& cg,
                                         double bound,
                                         TreeCoverStats* stats) const {
  const bool faulted = TENET_FAULT_POINT("core/cover_solve");
  // Only the fault (the stand-in for an unavailable solver backend) is a
  // dependency failure; kBoundTooSmall below is an expected, retryable
  // outcome of Algorithm 1 and must not trip a breaker.
  TENET_OBSERVE_DEPENDENCY("core/cover_solve", !faulted);
  static obs::DependencyOpCounters& ops =
      *new obs::DependencyOpCounters("core/cover_solve");
  ops.Record(!faulted);
  if (faulted) {
    return Status::Internal("injected fault: cover solver unavailable");
  }
  if (bound <= 0.0) {
    return Status::InvalidArgument("tree cover bound must be positive");
  }
  const int num_mentions = cg.num_mentions();
  const int num_concepts = cg.num_concept_nodes();

  TreeCover cover;
  cover.trees.resize(num_mentions);
  for (int m = 0; m < num_mentions; ++m) {
    cover.trees[m].root = m;
    cover.trees[m].nodes = {m};
  }
  if (num_concepts == 0) return cover;  // every mention isolated

  // ---- Step (a): edge pruning --------------------------------------------
  graph::WeightedGraph pruned = cg.graph().PrunedCopy(bound);
  if (stats != nullptr) {
    stats->pruned_edges = cg.graph().num_edges() - pruned.num_edges();
  }

  // ---- Step (b): major root node contraction -----------------------------
  // Contracted node 0 is r; contracted node j+1 is concept node
  // (num_mentions + j) of the coherence graph.
  graph::WeightedGraph contracted(num_concepts + 1);
  std::vector<int> star_mention(num_concepts, -1);
  std::vector<double> star_weight(num_concepts,
                                  std::numeric_limits<double>::infinity());
  for (const graph::Edge& e : pruned.edges()) {
    const bool u_is_mention = e.u < num_mentions;
    const bool v_is_mention = e.v < num_mentions;
    TENET_DCHECK(!(u_is_mention && v_is_mention));
    if (u_is_mention || v_is_mention) {
      int mention = u_is_mention ? e.u : e.v;
      int concept_local = (u_is_mention ? e.v : e.u) - num_mentions;
      contracted.AddEdge(0, concept_local + 1, e.weight);
      if (e.weight < star_weight[concept_local]) {
        star_weight[concept_local] = e.weight;
        star_mention[concept_local] = mention;
      }
    } else {
      contracted.AddEdge(e.u - num_mentions + 1, e.v - num_mentions + 1,
                         e.weight);
    }
  }

  // ---- Step (c): MST (Kruskal order; see Sec. 4.2 discussion) ------------
  graph::SpanningForest mst = graph::KruskalMst(contracted);
  if (!mst.spans_all) {
    return Status::BoundTooSmall(
        "pruned contracted graph is disconnected; B below B*");
  }
  if (stats != nullptr) {
    stats->mst_edges = static_cast<int>(mst.edge_indices.size());
  }

  // ---- Step (d): decompose r back into the mentions ----------------------
  // Components of MST \ {r}; each hangs off exactly one star edge.
  std::vector<std::vector<std::pair<int, double>>> mst_adj(num_concepts + 1);
  std::vector<std::pair<int, double>> root_edges;  // (concept_local+1, w)
  for (int edge_index : mst.edge_indices) {
    const graph::Edge& e = contracted.edges()[edge_index];
    if (e.u == 0 || e.v == 0) {
      root_edges.emplace_back(e.u == 0 ? e.v : e.u, e.weight);
    } else {
      mst_adj[e.u].emplace_back(e.v, e.weight);
      mst_adj[e.v].emplace_back(e.u, e.weight);
    }
  }

  std::vector<graph::RootedTree> mention_trees;
  std::vector<int> tree_owner;  // mention id per decomposed tree
  {
    std::vector<bool> visited(num_concepts + 1, false);
    for (const auto& [entry, entry_weight] : root_edges) {
      TENET_CHECK(!visited[entry])
          << "component attached to r by two star edges (cycle in MST)";
      int concept_local = entry - 1;
      int mention = star_mention[concept_local];
      TENET_DCHECK(mention >= 0);
      // Collect the component as oriented edges in coherence-graph ids.
      std::vector<graph::TreeEdge> edges;
      edges.push_back(graph::TreeEdge{
          mention, num_mentions + concept_local, entry_weight});
      std::vector<int> stack{entry};
      visited[entry] = true;
      while (!stack.empty()) {
        int node = stack.back();
        stack.pop_back();
        for (const auto& [next, w] : mst_adj[node]) {
          if (visited[next]) continue;
          visited[next] = true;
          edges.push_back(graph::TreeEdge{num_mentions + node - 1,
                                          num_mentions + next - 1, w});
          stack.push_back(next);
        }
      }
      Result<graph::RootedTree> tree =
          graph::RootedTree::FromOrientedEdges(mention, edges);
      TENET_CHECK(tree.ok()) << tree.status();
      mention_trees.push_back(std::move(tree).value());
      tree_owner.push_back(mention);
    }
  }

  // A mention may own several components (it was the cheapest root edge of
  // several) — merge them into one tree rooted at the mention.
  // std::map keeps mention iteration order deterministic across platforms.
  std::map<int, std::vector<graph::TreeEdge>> edges_by_mention;
  for (size_t t = 0; t < mention_trees.size(); ++t) {
    std::vector<graph::TreeEdge>& bucket = edges_by_mention[tree_owner[t]];
    const std::vector<graph::TreeEdge>& edges = mention_trees[t].edges();
    bucket.insert(bucket.end(), edges.begin(), edges.end());
  }

  // ---- Step (e): tree splitting ------------------------------------------
  struct OwnedSubtree {
    int owner;  // mention whose decomposed tree it was carved from
    graph::RootedTree tree;
  };
  std::vector<OwnedSubtree> subtrees;
  std::vector<graph::RootedTree> leftovers;
  std::vector<int> leftover_owner;
  for (auto& [mention, edges] : edges_by_mention) {
    Result<graph::RootedTree> tree =
        graph::RootedTree::FromOrientedEdges(mention, edges);
    TENET_CHECK(tree.ok()) << tree.status();
    Result<SplitResult> split = SplitTree(tree.value(), bound);
    TENET_CHECK(split.ok()) << split.status();
    leftovers.push_back(std::move(split.value().leftover));
    leftover_owner.push_back(mention);
    for (graph::RootedTree& s : split.value().subtrees) {
      subtrees.push_back(OwnedSubtree{mention, std::move(s)});
    }
  }
  if (stats != nullptr) {
    stats->subtrees = static_cast<int>(subtrees.size());
  }

  std::vector<CoverTreeAccumulator> accumulators;
  accumulators.reserve(num_mentions);
  for (int m = 0; m < num_mentions; ++m) accumulators.emplace_back(m);
  for (size_t i = 0; i < leftovers.size(); ++i) {
    accumulators[leftover_owner[i]].AddTree(leftovers[i]);
  }

  // ---- Step (f): maximum matching of subtrees to mentions ----------------
  if (!subtrees.empty()) {
    // Shortest paths from every mention in the pruned graph.
    std::vector<graph::ShortestPaths> paths;
    paths.reserve(num_mentions);
    for (int m = 0; m < num_mentions; ++m) {
      paths.push_back(graph::Dijkstra(pruned, m));
    }
    graph::HopcroftKarp matcher(num_mentions,
                                static_cast<int>(subtrees.size()));
    // For path reconstruction: the closest subtree node per (mention,
    // subtree) pair.
    std::vector<std::vector<int>> closest_node(
        num_mentions, std::vector<int>(subtrees.size(), -1));
    for (int m = 0; m < num_mentions; ++m) {
      for (size_t s = 0; s < subtrees.size(); ++s) {
        double best = std::numeric_limits<double>::infinity();
        int best_node = -1;
        for (int node : subtrees[s].tree.nodes()) {
          if (paths[m].distance[node] < best) {
            best = paths[m].distance[node];
            best_node = node;
          }
        }
        if (best_node >= 0 && best <= bound) {
          matcher.AddEdge(m, static_cast<int>(s));
          closest_node[m][s] = best_node;
        }
      }
    }
    int matched = matcher.MaxMatching();
    if (matched < static_cast<int>(subtrees.size())) {
      return Status::BoundTooSmall(
          "maximum matching cannot assign every subtree; B below B*");
    }
    if (stats != nullptr) stats->matched_subtrees = matched;

    for (size_t s = 0; s < subtrees.size(); ++s) {
      int mention = matcher.MatchOfRight(static_cast<int>(s));
      TENET_DCHECK(mention >= 0);
      CoverTreeAccumulator& acc = accumulators[mention];
      acc.AddTree(subtrees[s].tree);
      // Shortest path mention -> subtree.
      std::vector<int> path =
          paths[mention].PathTo(pruned, closest_node[mention][s]);
      for (size_t i = 1; i < path.size(); ++i) {
        acc.AddEdge(path[i - 1], path[i],
                    pruned.EdgeWeight(path[i - 1], path[i], 0.0));
      }
    }
  }

  for (int m = 0; m < num_mentions; ++m) {
    cover.trees[m] = accumulators[m].Take();
  }
  if (stats != nullptr) stats->cover_total_edges = cover.TotalEdges();
  return cover;
}

Result<std::pair<double, TreeCover>> SolveWithMinimalBound(
    const TreeCoverSolver& solver, const CoherenceGraph& cg,
    double initial_bound, double tolerance) {
  if (initial_bound <= 0.0) {
    return Status::InvalidArgument("initial bound must be positive");
  }
  double hi = initial_bound;
  Result<TreeCover> at_hi = solver.Solve(cg, hi);
  int guard = 0;
  while (!at_hi.ok()) {
    if (!at_hi.status().IsBoundTooSmall() || ++guard > 64) {
      return at_hi.status();
    }
    hi *= 2.0;
    at_hi = solver.Solve(cg, hi);
  }
  double lo = 0.0;
  // Bisect [lo, hi); hi always feasible.
  while (hi - lo > tolerance * hi) {
    double mid = (lo + hi) / 2.0;
    if (mid <= 0.0) break;
    Result<TreeCover> at_mid = solver.Solve(cg, mid);
    if (at_mid.ok()) {
      hi = mid;
      at_hi = std::move(at_mid);
    } else if (at_mid.status().IsBoundTooSmall()) {
      lo = mid;
    } else {
      return at_mid.status();
    }
  }
  return std::make_pair(hi, std::move(at_hi).value());
}

}  // namespace core
}  // namespace tenet
