#ifndef TENET_CORE_TREE_SPLIT_H_
#define TENET_CORE_TREE_SPLIT_H_

#include <vector>

#include "common/result.h"
#include "graph/tree.h"

namespace tenet {
namespace core {

// Output of tree splitting (Algorithms 2 and 3): the leftover tree L_i
// containing the root mention, plus zero or more carved-off subtrees.
struct SplitResult {
  /// The leftover tree; always contains the original root and has weight
  /// omega(L) <= B.
  graph::RootedTree leftover = graph::RootedTree::Singleton(0);
  /// Carved subtrees; each has weight omega(S) in (B, 2B].  A subtree's
  /// root may be shared with the leftover or another subtree (trees of a
  /// cover may share nodes, Definition 6).
  std::vector<graph::RootedTree> subtrees;
};

// Splits `tree` under the bound `bound`, establishing the invariants of
// Algorithms 2 and 3:
//   * omega(leftover) <= bound and root(tree) in leftover;
//   * every subtree weight lies in (bound, 2*bound];
//   * the union of leftover and subtree edges is exactly the edges of
//     `tree` (each edge appears once).
//
// The implementation is a single post-order recursion rather than the
// paper's two-procedure stack formulation; see DESIGN.md (Faithfulness
// notes) — the published pseudo-code can return a leftover in (B, 2B],
// contradicting its own output contract, while this recursion provably
// establishes it whenever every edge weight is <= bound.
//
// Fails with InvalidArgument when some edge weighs more than `bound`
// (Algorithm 1 step (a) guarantees pruned inputs) or bound <= 0.
Result<SplitResult> SplitTree(const graph::RootedTree& tree, double bound);

}  // namespace core
}  // namespace tenet

#endif  // TENET_CORE_TREE_SPLIT_H_
