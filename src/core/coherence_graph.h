#ifndef TENET_CORE_COHERENCE_GRAPH_H_
#define TENET_CORE_COHERENCE_GRAPH_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/mention.h"
#include "embedding/embedding_store.h"
#include "embedding/similarity_cache.h"
#include "graph/graph.h"
#include "kb/kb_view.h"
#include "kb/knowledge_base.h"

namespace tenet {
namespace core {

// Knobs of coherence-graph construction.
struct CoherenceGraphOptions {
  /// Candidates per mention (the parameter k of Figures 6(d) and 7(c)).
  /// The paper finds 3-4 optimal: fewer starves coherence, more adds noise.
  int max_candidates_per_mention = 4;
  /// Shared worker pool driving the pairwise kernel (Sec. 6.2's parallel
  /// edge retrieval).  Null runs the kernel serially in the calling
  /// thread.  The pool must outlive the builder, and must NOT be a pool
  /// whose own workers call Build (the build blocks on its subtasks — a
  /// worker waiting on work queued behind itself deadlocks); give the
  /// coherence kernel its own pool, not the serving layer's request pool.
  ThreadPool* pool = nullptr;
  /// Cap on the pairwise kernel's task count when `pool` is set: 0 uses
  /// pool->num_threads(), 1 forces a serial build.  (Historically this was
  /// the size of a per-Build std::thread spawn; Build never spawns threads
  /// itself anymore.)  Output is identical for every value — partitions
  /// are deterministic and results are merged in row order.
  int num_threads = 0;
  /// Cross-document pairwise-similarity cache consulted by Build (see
  /// SimilarityCache).  Null computes every pair.  A per-request cache on
  /// the LinkContext overrides this one.
  embedding::SimilarityCache* similarity_cache = nullptr;
  /// When false, concept-pair weights come from per-pair
  /// EmbeddingStore::Cosine calls instead of the gathered, tiled kernel.
  /// Same values by construction (both run the DotUnit reduction over unit
  /// rows) but one fault-point probe per pair instead of per document.
  /// Kept for the golden equivalence test and as an escape hatch.
  bool use_gather_kernel = true;
};

// The knowledge coherence graph G = (V, E) of Definition 4.
//
// Node layout: ids [0, M) are mention nodes (id == mention id in the owned
// MentionSet); ids [M, M + C) are concept nodes, one per (mention,
// candidate) pair.  A candidate concept shared by two mentions yields two
// concept nodes whose connecting edge has distance 1 - cos(v, v) ~= 0.
//
// Edges (Sec. 3):
//   * mention -> own candidate, weight 1 - P(c|m)            (Eqs. 1-2)
//   * entity  -> entity of a different mention, 1 - cos      (Eq. 3)
//   * predicate -> predicate of a different relational phrase in the same
//     sentence, 1 - cos                                      (Eq. 4)
//   * entity -> predicate whose phrases share a sentence, 1 - cos (Eq. 5)
class CoherenceGraph {
 public:
  // One candidate concept node.
  struct ConceptNode {
    int mention = -1;  // owning mention id
    kb::ConceptRef ref;
    double prior = 0.0;  // P(c | mention)
  };

  const graph::WeightedGraph& graph() const { return graph_; }
  const MentionSet& mentions() const { return mentions_; }

  int num_mentions() const { return mentions_.num_mentions(); }
  int num_concept_nodes() const {
    return static_cast<int>(concept_nodes_.size());
  }
  int num_nodes() const { return graph_.num_nodes(); }

  bool IsMentionNode(int node) const { return node < num_mentions(); }

  /// The mention id a node belongs to: itself for mention nodes, the owning
  /// mention for concept nodes.
  int MentionOfNode(int node) const;

  /// Details of concept node `node` (which must be >= num_mentions()).
  const ConceptNode& concept_node(int node) const;

  /// Node ids of the candidates of `mention`.
  const std::vector<int>& ConceptNodesOfMention(int mention) const;

 private:
  friend class CoherenceGraphBuilder;
  CoherenceGraph(MentionSet mentions, int num_concepts)
      : mentions_(std::move(mentions)),
        graph_(mentions_.num_mentions() + num_concepts),
        concepts_of_mention_(mentions_.num_mentions()) {}

  MentionSet mentions_;
  graph::WeightedGraph graph_;
  std::vector<ConceptNode> concept_nodes_;
  std::vector<std::vector<int>> concepts_of_mention_;
};

// Builds CoherenceGraphs for documents against one KB + embedding store.
//
// The concept x concept stage is the pipeline's dominant cost (O(C^2)
// similarities per document), so it runs as a batched kernel: one
// GatherUnit fetches every candidate's unit row into a contiguous
// row-major scratch (a single dependency operation), then a tiled
// triangular sweep computes pair weights with the DotUnit reduction —
// identical values to per-pair Cosine() calls, emitted in lexicographic
// (i, j) pair order whatever the tiling or task partition, so the edge
// list (and everything downstream of it) is deterministic.
class CoherenceGraphBuilder {
 public:
  /// Builds against any KB substrate behind the KbView contract — flat or
  /// sharded; the view is shared-owned so generations can retire while a
  /// builder is mid-flight.
  CoherenceGraphBuilder(std::shared_ptr<const kb::KbView> view,
                        CoherenceGraphOptions options = {});

  /// Convenience over the flat substrate: wraps `kb` + `embeddings` (which
  /// must outlive the builder and be finalized) in a FlatKbView.
  CoherenceGraphBuilder(const kb::KnowledgeBase* kb,
                        const embedding::EmbeddingStore* embeddings,
                        CoherenceGraphOptions options = {});

  /// Builds the coherence graph over `mentions` (moved in; retrievable via
  /// CoherenceGraph::mentions()), consulting the options' similarity
  /// cache, if any.
  CoherenceGraph Build(MentionSet mentions) const;

  /// Same, with an explicit similarity cache (null: compute every pair).
  /// The per-request path: the pipeline passes the LinkContext's cache and
  /// epoch — the KB generation id tagging this request's cache entries,
  /// so a shared cache survives live KB swaps without serving stale
  /// cosines (see SimilarityCache's epoch contract).
  CoherenceGraph Build(MentionSet mentions,
                       embedding::SimilarityCache* cache,
                       uint64_t cache_epoch = 0) const;

  const CoherenceGraphOptions& options() const { return options_; }
  const kb::KbView& view() const { return *view_; }

 private:
  std::shared_ptr<const kb::KbView> view_;
  CoherenceGraphOptions options_;
};

}  // namespace core
}  // namespace tenet

#endif  // TENET_CORE_COHERENCE_GRAPH_H_
