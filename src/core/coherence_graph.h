#ifndef TENET_CORE_COHERENCE_GRAPH_H_
#define TENET_CORE_COHERENCE_GRAPH_H_

#include <vector>

#include "core/mention.h"
#include "embedding/embedding_store.h"
#include "graph/graph.h"
#include "kb/knowledge_base.h"

namespace tenet {
namespace core {

// Knobs of coherence-graph construction.
struct CoherenceGraphOptions {
  /// Candidates per mention (the parameter k of Figures 6(d) and 7(c)).
  /// The paper finds 3-4 optimal: fewer starves coherence, more adds noise.
  int max_candidates_per_mention = 4;
  /// Compute concept-concept edge weights with a thread pool of this many
  /// workers (Sec. 6.2 notes the parallel edge retrieval); 1 = serial.
  int num_threads = 1;
};

// The knowledge coherence graph G = (V, E) of Definition 4.
//
// Node layout: ids [0, M) are mention nodes (id == mention id in the owned
// MentionSet); ids [M, M + C) are concept nodes, one per (mention,
// candidate) pair.  A candidate concept shared by two mentions yields two
// concept nodes whose connecting edge has distance 1 - cos(v, v) = 0.
//
// Edges (Sec. 3):
//   * mention -> own candidate, weight 1 - P(c|m)            (Eqs. 1-2)
//   * entity  -> entity of a different mention, 1 - cos      (Eq. 3)
//   * predicate -> predicate of a different relational phrase in the same
//     sentence, 1 - cos                                      (Eq. 4)
//   * entity -> predicate whose phrases share a sentence, 1 - cos (Eq. 5)
class CoherenceGraph {
 public:
  // One candidate concept node.
  struct ConceptNode {
    int mention = -1;  // owning mention id
    kb::ConceptRef ref;
    double prior = 0.0;  // P(c | mention)
  };

  const graph::WeightedGraph& graph() const { return graph_; }
  const MentionSet& mentions() const { return mentions_; }

  int num_mentions() const { return mentions_.num_mentions(); }
  int num_concept_nodes() const {
    return static_cast<int>(concept_nodes_.size());
  }
  int num_nodes() const { return graph_.num_nodes(); }

  bool IsMentionNode(int node) const { return node < num_mentions(); }

  /// The mention id a node belongs to: itself for mention nodes, the owning
  /// mention for concept nodes.
  int MentionOfNode(int node) const;

  /// Details of concept node `node` (which must be >= num_mentions()).
  const ConceptNode& concept_node(int node) const;

  /// Node ids of the candidates of `mention`.
  const std::vector<int>& ConceptNodesOfMention(int mention) const;

 private:
  friend class CoherenceGraphBuilder;
  CoherenceGraph(MentionSet mentions, int num_concepts)
      : mentions_(std::move(mentions)),
        graph_(mentions_.num_mentions() + num_concepts),
        concepts_of_mention_(mentions_.num_mentions()) {}

  MentionSet mentions_;
  graph::WeightedGraph graph_;
  std::vector<ConceptNode> concept_nodes_;
  std::vector<std::vector<int>> concepts_of_mention_;
};

// Builds CoherenceGraphs for documents against one KB + embedding store.
class CoherenceGraphBuilder {
 public:
  /// `kb` and `embeddings` must outlive the builder and be finalized.
  CoherenceGraphBuilder(const kb::KnowledgeBase* kb,
                        const embedding::EmbeddingStore* embeddings,
                        CoherenceGraphOptions options = {});

  /// Builds the coherence graph over `mentions` (moved in; retrievable via
  /// CoherenceGraph::mentions()).
  CoherenceGraph Build(MentionSet mentions) const;

  const CoherenceGraphOptions& options() const { return options_; }

 private:
  const kb::KnowledgeBase* kb_;
  const embedding::EmbeddingStore* embeddings_;
  CoherenceGraphOptions options_;
};

}  // namespace core
}  // namespace tenet

#endif  // TENET_CORE_COHERENCE_GRAPH_H_
