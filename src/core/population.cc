#include "core/population.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace tenet {
namespace core {

KbPopulator::KbPopulator(const kb::KnowledgeBase* kb) : kb_(kb) {
  TENET_CHECK(kb != nullptr);
  TENET_CHECK(kb->finalized());
}

bool KbPopulator::FactKnown(kb::EntityId subject, kb::PredicateId predicate,
                            kb::EntityId object) const {
  for (int32_t fact_index : kb_->FactsOfEntity(subject)) {
    const kb::Triple& t = kb_->facts()[fact_index];
    if (t.predicate != predicate || !t.object_is_entity) continue;
    if ((t.subject == subject && t.object_entity == object) ||
        (t.subject == object && t.object_entity == subject)) {
      return true;
    }
  }
  return false;
}

std::vector<FactCandidate> KbPopulator::HarvestFacts(
    const LinkingResult& result) const {
  // sentence -> linked entities (document order) / predicates.
  std::map<int, std::vector<kb::EntityId>> entities_by_sentence;
  std::map<int, std::vector<kb::PredicateId>> predicates_by_sentence;
  for (const LinkedConcept& link : result.links) {
    const Mention& mention = result.mentions.mention(link.mention_id);
    for (int s : mention.sentences) {
      if (link.kind == Mention::Kind::kNoun) {
        entities_by_sentence[s].push_back(link.concept_ref.id);
      } else {
        predicates_by_sentence[s].push_back(link.concept_ref.id);
      }
    }
  }
  std::vector<FactCandidate> facts;
  for (const auto& [sentence, predicates] : predicates_by_sentence) {
    auto it = entities_by_sentence.find(sentence);
    if (it == entities_by_sentence.end() || it->second.size() < 2) continue;
    for (kb::PredicateId p : predicates) {
      FactCandidate fact;
      fact.subject = it->second[0];
      fact.predicate = p;
      fact.object = it->second[1];
      if (fact.subject == fact.object) continue;
      fact.already_known = FactKnown(fact.subject, p, fact.object);
      if (std::find(facts.begin(), facts.end(), fact) == facts.end()) {
        facts.push_back(fact);
      }
    }
  }
  return facts;
}

std::vector<EmergingEntity> KbPopulator::HarvestEmergingEntities(
    const LinkingResult& result) const {
  std::vector<EmergingEntity> out;
  for (int m : result.isolated_mentions) {
    const Mention& mention = result.mentions.mention(m);
    if (!mention.is_noun()) continue;
    EmergingEntity entity;
    entity.surface = mention.surface;
    out.push_back(std::move(entity));
  }
  return out;
}

void KbPopulator::Accumulate(const LinkingResult& result,
                             PopulationReport* report) const {
  TENET_CHECK(report != nullptr);
  for (const FactCandidate& fact : HarvestFacts(result)) {
    auto it = std::find(report->facts.begin(), report->facts.end(), fact);
    if (it != report->facts.end()) {
      ++it->support;
    } else {
      report->facts.push_back(fact);
    }
  }
  for (const EmergingEntity& entity : HarvestEmergingEntities(result)) {
    bool merged = false;
    for (EmergingEntity& existing : report->entities) {
      if (EqualsIgnoreCase(existing.surface, entity.surface)) {
        ++existing.support;
        merged = true;
        break;
      }
    }
    if (!merged) report->entities.push_back(entity);
  }
}

int KbPopulator::ApplyToKb(const PopulationReport& report, int min_support,
                           kb::EntityType emerging_type,
                           kb::KnowledgeBase* target) const {
  TENET_CHECK(target != nullptr);
  TENET_CHECK(!target->finalized())
      << "population must be applied before Finalize";
  for (const EmergingEntity& entity : report.entities) {
    if (entity.support < min_support) continue;
    target->AddEntity(entity.surface, emerging_type);
  }
  int added = 0;
  for (const FactCandidate& fact : report.facts) {
    if (fact.already_known || fact.support < min_support) continue;
    if (target->AddFact(fact.subject, fact.predicate, fact.object).ok()) {
      ++added;
    }
  }
  return added;
}

}  // namespace core
}  // namespace tenet
