#include "core/pipeline.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace tenet {
namespace core {
namespace {

using TopCandidate = std::optional<std::pair<kb::ConceptRef, double>>;

// Shared assembly of the prior-only fallback: per mention group, keep the
// canopy whose mentions are collectively most confident under the priors
// (the degraded stand-in for coherence-driven canopy resolution), then link
// every mention of the winning canopy to its top-prior candidate.  Mentions
// without candidates are reported isolated, exactly like the full path.
// `top(mention_id)` yields the best candidate or nullopt.
template <typename TopFn>
LinkingResult AssemblePriorOnly(const MentionSet& universe, TopFn&& top) {
  LinkingResult result;
  for (int g = 0; g < universe.num_groups(); ++g) {
    const MentionGroup& group = universe.groups[g];
    int winning = 0;
    double best_score = -1.0;
    size_t best_size = 0;
    for (size_t k = 0; k < group.canopies.size(); ++k) {
      double score = 0.0;
      for (int m : group.canopies[k].mentions) {
        if (TopCandidate c = top(m)) score += c->second;
      }
      // Equal prior mass over fewer mentions means longer spans — prefer
      // them, mirroring the extractor's maximal-span readings.
      size_t size = group.canopies[k].mentions.size();
      if (score > best_score ||
          (score == best_score && size < best_size)) {
        best_score = score;
        best_size = size;
        winning = static_cast<int>(k);
      }
    }
    const std::vector<int>& reading = group.canopies.empty()
                                          ? group.short_mentions
                                          : group.canopies[winning].mentions;
    for (int m : reading) {
      result.selected_mentions.push_back(m);
      TopCandidate c = top(m);
      if (!c.has_value()) {
        result.isolated_mentions.push_back(m);
        continue;
      }
      LinkedConcept link;
      link.mention_id = m;
      link.surface = universe.mention(m).surface;
      link.kind = universe.mention(m).kind;
      link.concept_ref = c->first;
      link.prior = c->second;
      result.links.push_back(std::move(link));
    }
  }
  std::sort(result.links.begin(), result.links.end(),
            [](const LinkedConcept& a, const LinkedConcept& b) {
              return a.mention_id < b.mention_id;
            });
  std::sort(result.selected_mentions.begin(), result.selected_mentions.end());
  std::sort(result.isolated_mentions.begin(), result.isolated_mentions.end());
  return result;
}

}  // namespace

std::string_view DegradationModeToString(DegradationInfo::Mode mode) {
  switch (mode) {
    case DegradationInfo::Mode::kFull:
      return "full";
    case DegradationInfo::Mode::kPriorOnly:
      return "prior_only";
  }
  return "unknown";
}

TenetPipeline::TenetPipeline(const kb::KnowledgeBase* kb,
                             const embedding::EmbeddingStore* embeddings,
                             const text::Gazetteer* gazetteer,
                             TenetOptions options)
    : kb_(kb),
      embeddings_(embeddings),
      gazetteer_(gazetteer),
      options_(options),
      graph_builder_(kb, embeddings, options.graph),
      disambiguator_(options.disambiguator) {
  TENET_CHECK(gazetteer != nullptr);
  TENET_CHECK_GT(options_.bound_factor, 0.0);
  TENET_CHECK_GE(options_.bound_retry.max_retries, 0);
  TENET_CHECK_GE(options_.bound_retry.multiplier, 1.0);
}

Deadline TenetPipeline::DefaultDeadline() const {
  return Deadline::AfterMillis(options_.deadline_ms);
}

Result<LinkingResult> TenetPipeline::LinkDocument(
    std::string_view document_text) const {
  return LinkDocument(document_text, DefaultDeadline());
}

Result<LinkingResult> TenetPipeline::LinkDocument(
    std::string_view document_text, Deadline deadline) const {
  // Extraction always runs: even a fully degraded answer needs the mention
  // universe, and the stage is cheap relative to the coherence machinery.
  WallTimer timer;
  text::Extractor extractor(gazetteer_);
  text::ExtractionResult extraction =
      extractor.ExtractFromText(document_text);
  double extract_ms = timer.ElapsedMillis();

  TENET_ASSIGN_OR_RETURN(LinkingResult result,
                         LinkExtraction(extraction, deadline));
  result.timings.extract_ms = extract_ms;
  return result;
}

Result<LinkingResult> TenetPipeline::LinkExtraction(
    const text::ExtractionResult& extraction) const {
  return LinkExtraction(extraction, DefaultDeadline());
}

Result<LinkingResult> TenetPipeline::LinkExtraction(
    const text::ExtractionResult& extraction, Deadline deadline) const {
  MentionSet mentions =
      BuildMentionSet(extraction, gazetteer_, options_.canopy);
  return LinkMentionSet(std::move(mentions), deadline);
}

Result<LinkingResult> TenetPipeline::LinkMentionSet(
    MentionSet mentions) const {
  return LinkMentionSet(std::move(mentions), DefaultDeadline());
}

Result<LinkingResult> TenetPipeline::LinkMentionSet(MentionSet mentions,
                                                    Deadline deadline) const {
  LinkingResult result;
  if (mentions.num_mentions() == 0) {
    result.mentions = std::move(mentions);
    return result;
  }
  PipelineTimings timings;

  // ---- Rung 0: budget gone before the coherence stage --------------------
  if (deadline.expired()) {
    if (!options_.degrade_to_prior) {
      return Status::DeadlineExceeded(
          "deadline expired before the coherence stage");
    }
    return PriorOnlyFromMentions(std::move(mentions),
                                 "deadline expired before the coherence stage",
                                 /*stages_degraded=*/3, timings);
  }

  WallTimer timer;
  CoherenceGraph cg = graph_builder_.Build(std::move(mentions));
  timings.graph_ms = timer.ElapsedMillis();

  // ---- Tree cover: B = bound_factor * |M| (Sec. 6.1), growing on the
  // failure warning per the retry policy, under the deadline ---------------
  timer.Restart();
  RetrySchedule schedule(options_.bound_retry,
                         options_.bound_factor * cg.num_mentions());
  Result<TreeCover> cover = Status::Internal("unsolved");
  TreeCoverStats cover_stats;
  Status interrupted;  // non-OK when the deadline cut the search short
  do {
    if (deadline.expired()) {
      interrupted = Status::DeadlineExceeded(
          "deadline expired during the tree-cover search");
      break;
    }
    cover = solver_.Solve(cg, schedule.value(), &cover_stats);
    if (cover.ok() || !cover.status().IsBoundTooSmall()) break;
  } while (schedule.Next());
  timings.cover_ms = timer.ElapsedMillis();

  // ---- Rung 1: cover unavailable (deadline, retry exhaustion, or solver
  // fault) -> serve priors from the already-built graph --------------------
  if (!interrupted.ok() || !cover.ok()) {
    Status cause = !interrupted.ok() ? interrupted : cover.status();
    if (!options_.degrade_to_prior) return cause;
    return PriorOnlyFromGraph(cg, cause.ToString(), /*stages_degraded=*/2,
                              timings);
  }

  // ---- Rung 2: cover done but budget gone -> degrade the last stage ------
  if (deadline.expired()) {
    if (!options_.degrade_to_prior) {
      return Status::DeadlineExceeded(
          "deadline expired before disambiguation");
    }
    return PriorOnlyFromGraph(cg, "deadline expired before disambiguation",
                              /*stages_degraded=*/1, timings);
  }

  result.used_bound = schedule.value();
  result.cover_stats = cover_stats;

  timer.Restart();
  DisambiguationResult gamma = disambiguator_.Run(cg, cover.value());
  timings.disambiguate_ms = timer.ElapsedMillis();

  // ---- Assemble the output -------------------------------------------------
  const MentionSet& universe = cg.mentions();
  for (const auto& [mention_id, node] : gamma.selected_node) {
    const CoherenceGraph::ConceptNode& cn = cg.concept_node(node);
    LinkedConcept link;
    link.mention_id = mention_id;
    link.surface = universe.mention(mention_id).surface;
    link.kind = universe.mention(mention_id).kind;
    link.concept_ref = cn.ref;
    link.prior = cn.prior;
    result.links.push_back(std::move(link));
    result.selected_mentions.push_back(mention_id);
  }
  std::sort(result.links.begin(), result.links.end(),
            [](const LinkedConcept& a, const LinkedConcept& b) {
              return a.mention_id < b.mention_id;
            });

  // Isolated / emerging concepts: unlinked members of a resolved group's
  // winning canopy (e.g. the non-linkable "April" next to "Brooklyn"), and
  // the default all-short segmentation of groups that never resolved.
  for (int g = 0; g < universe.num_groups(); ++g) {
    const std::vector<int>& selected_reading =
        gamma.group_resolved[g]
            ? universe.groups[g].canopies[gamma.winning_canopy[g]].mentions
            : universe.groups[g].short_mentions;
    for (int mention_id : selected_reading) {
      if (!gamma.IsLinked(mention_id)) {
        result.isolated_mentions.push_back(mention_id);
        result.selected_mentions.push_back(mention_id);
      }
    }
  }
  std::sort(result.selected_mentions.begin(),
            result.selected_mentions.end());
  std::sort(result.isolated_mentions.begin(),
            result.isolated_mentions.end());

  result.mentions = cg.mentions();  // copy out the universe
  result.timings = timings;
  return result;
}

Result<LinkingResult> TenetPipeline::PriorOnlyFromMentions(
    MentionSet mentions, std::string reason, int stages_degraded,
    PipelineTimings timings) const {
  WallTimer timer;
  const MentionSet& universe = mentions;
  // Same candidate budget as the coherence graph, so the degraded path sees
  // the identical renormalized top-k prior distribution per mention.
  const int top_k = options_.graph.max_candidates_per_mention;
  auto top = [this, &universe, top_k](int m) -> TopCandidate {
    const Mention& mention = universe.mention(m);
    if (mention.is_noun()) {
      std::vector<kb::EntityCandidate> candidates =
          kb_->CandidateEntities(mention.surface, mention.type, top_k);
      if (candidates.empty()) return std::nullopt;
      return std::make_pair(kb::ConceptRef::Entity(candidates.front().entity),
                            candidates.front().prior);
    }
    std::vector<kb::PredicateCandidate> candidates =
        kb_->CandidatePredicates(mention.surface, top_k);
    if (candidates.empty()) return std::nullopt;
    return std::make_pair(
        kb::ConceptRef::Predicate(candidates.front().predicate),
        candidates.front().prior);
  };
  LinkingResult result = AssemblePriorOnly(universe, top);
  result.mentions = std::move(mentions);
  timings.disambiguate_ms = timer.ElapsedMillis();
  result.timings = timings;
  result.degradation.mode = DegradationInfo::Mode::kPriorOnly;
  result.degradation.reason = std::move(reason);
  result.degradation.stages_degraded = stages_degraded;
  return result;
}

Result<LinkingResult> TenetPipeline::PriorOnlyFromGraph(
    const CoherenceGraph& cg, std::string reason, int stages_degraded,
    PipelineTimings timings) const {
  WallTimer timer;
  auto top = [&cg](int m) -> TopCandidate {
    const std::vector<int>& nodes = cg.ConceptNodesOfMention(m);
    const CoherenceGraph::ConceptNode* best = nullptr;
    for (int node : nodes) {
      const CoherenceGraph::ConceptNode& cn = cg.concept_node(node);
      if (best == nullptr || cn.prior > best->prior) best = &cn;
    }
    if (best == nullptr) return std::nullopt;
    return std::make_pair(best->ref, best->prior);
  };
  LinkingResult result = AssemblePriorOnly(cg.mentions(), top);
  result.mentions = cg.mentions();  // copy out the universe
  timings.disambiguate_ms = timer.ElapsedMillis();
  result.timings = timings;
  result.degradation.mode = DegradationInfo::Mode::kPriorOnly;
  result.degradation.reason = std::move(reason);
  result.degradation.stages_degraded = stages_degraded;
  return result;
}

}  // namespace core
}  // namespace tenet
