#include "core/pipeline.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"

namespace tenet {
namespace core {

TenetPipeline::TenetPipeline(const kb::KnowledgeBase* kb,
                             const embedding::EmbeddingStore* embeddings,
                             const text::Gazetteer* gazetteer,
                             TenetOptions options)
    : kb_(kb),
      embeddings_(embeddings),
      gazetteer_(gazetteer),
      options_(options),
      graph_builder_(kb, embeddings, options.graph),
      disambiguator_(options.disambiguator) {
  TENET_CHECK(gazetteer != nullptr);
  TENET_CHECK_GT(options_.bound_factor, 0.0);
}

Result<LinkingResult> TenetPipeline::LinkDocument(
    std::string_view document_text) const {
  WallTimer timer;
  text::Extractor extractor(gazetteer_);
  text::ExtractionResult extraction =
      extractor.ExtractFromText(document_text);
  double extract_ms = timer.ElapsedMillis();

  TENET_ASSIGN_OR_RETURN(LinkingResult result, LinkExtraction(extraction));
  result.timings.extract_ms = extract_ms;
  return result;
}

Result<LinkingResult> TenetPipeline::LinkExtraction(
    const text::ExtractionResult& extraction) const {
  MentionSet mentions =
      BuildMentionSet(extraction, gazetteer_, options_.canopy);
  return LinkMentionSet(std::move(mentions));
}

Result<LinkingResult> TenetPipeline::LinkMentionSet(
    MentionSet mentions) const {
  LinkingResult result;
  if (mentions.num_mentions() == 0) {
    result.mentions = std::move(mentions);
    return result;
  }

  WallTimer timer;
  CoherenceGraph cg = graph_builder_.Build(std::move(mentions));
  result.timings.graph_ms = timer.ElapsedMillis();

  // B = bound_factor * |M| (Sec. 6.1), doubling on the failure warning.
  timer.Restart();
  double bound = options_.bound_factor * cg.num_mentions();
  Result<TreeCover> cover = Status::Internal("unsolved");
  for (int attempt = 0; attempt <= options_.max_bound_retries; ++attempt) {
    cover = solver_.Solve(cg, bound, &result.cover_stats);
    if (cover.ok() || !cover.status().IsBoundTooSmall()) break;
    bound *= 2.0;
  }
  if (!cover.ok()) return cover.status();
  result.used_bound = bound;
  result.timings.cover_ms = timer.ElapsedMillis();

  timer.Restart();
  DisambiguationResult gamma = disambiguator_.Run(cg, cover.value());
  result.timings.disambiguate_ms = timer.ElapsedMillis();

  // ---- Assemble the output -------------------------------------------------
  const MentionSet& universe = cg.mentions();
  for (const auto& [mention_id, node] : gamma.selected_node) {
    const CoherenceGraph::ConceptNode& cn = cg.concept_node(node);
    LinkedConcept link;
    link.mention_id = mention_id;
    link.surface = universe.mention(mention_id).surface;
    link.kind = universe.mention(mention_id).kind;
    link.concept_ref = cn.ref;
    link.prior = cn.prior;
    result.links.push_back(std::move(link));
    result.selected_mentions.push_back(mention_id);
  }
  std::sort(result.links.begin(), result.links.end(),
            [](const LinkedConcept& a, const LinkedConcept& b) {
              return a.mention_id < b.mention_id;
            });

  // Isolated / emerging concepts: unlinked members of a resolved group's
  // winning canopy (e.g. the non-linkable "April" next to "Brooklyn"), and
  // the default all-short segmentation of groups that never resolved.
  for (int g = 0; g < universe.num_groups(); ++g) {
    const std::vector<int>& selected_reading =
        gamma.group_resolved[g]
            ? universe.groups[g].canopies[gamma.winning_canopy[g]].mentions
            : universe.groups[g].short_mentions;
    for (int mention_id : selected_reading) {
      if (!gamma.IsLinked(mention_id)) {
        result.isolated_mentions.push_back(mention_id);
        result.selected_mentions.push_back(mention_id);
      }
    }
  }
  std::sort(result.selected_mentions.begin(),
            result.selected_mentions.end());
  std::sort(result.isolated_mentions.begin(),
            result.isolated_mentions.end());

  result.mentions = cg.mentions();  // copy out the universe
  return result;
}

}  // namespace core
}  // namespace tenet
