#include "core/pipeline.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace tenet {
namespace core {
namespace {

using TopCandidate = std::optional<std::pair<kb::ConceptRef, double>>;

// The pipeline's metric families, resolved once against the default
// registry and cached (Get* takes a lock; the cached pointers do not).
// Label values are closed sets — stage names, degradation modes, rung
// numbers — per the cardinality rules of DESIGN.md §9.
struct PipelineMetrics {
  obs::Histogram* stage_extract;
  obs::Histogram* stage_graph;
  obs::Histogram* stage_cover;
  obs::Histogram* stage_disambiguate;
  obs::Histogram* latency_full;
  obs::Histogram* latency_prior_only;
  obs::Counter* documents_full;
  obs::Counter* documents_prior_only;
  obs::Counter* degraded_by_rung[4];  // indexed by stages_degraded, 1..3
  obs::Counter* cover_retries;
};

const PipelineMetrics& Metrics() {
  static const PipelineMetrics* metrics = [] {
    obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
    constexpr const char* kStageHelp =
        "Per-stage TENET pipeline latency in milliseconds (the Figure 7 "
        "stage columns); the sum per stage equals the summed "
        "PipelineTimings fields.";
    constexpr const char* kLatencyHelp =
        "End-to-end per-document linking latency in milliseconds, by "
        "degradation mode.";
    constexpr const char* kDocumentsHelp =
        "Documents served, by degradation mode.";
    constexpr const char* kDegradedHelp =
        "Documents served degraded, by ladder rung (rung = pipeline stages "
        "skipped or replaced).";
    auto* m = new PipelineMetrics;
    auto stage = [&](const char* name) {
      return registry->GetHistogram("tenet_stage_latency_ms", kStageHelp,
                                    obs::LabelPair("stage", name));
    };
    m->stage_extract = stage("extract");
    m->stage_graph = stage("graph");
    m->stage_cover = stage("cover");
    m->stage_disambiguate = stage("disambiguate");
    m->latency_full =
        registry->GetHistogram("tenet_document_latency_ms", kLatencyHelp,
                               obs::LabelPair("mode", "full"));
    m->latency_prior_only =
        registry->GetHistogram("tenet_document_latency_ms", kLatencyHelp,
                               obs::LabelPair("mode", "prior_only"));
    m->documents_full =
        registry->GetCounter("tenet_documents_total", kDocumentsHelp,
                             obs::LabelPair("mode", "full"));
    m->documents_prior_only =
        registry->GetCounter("tenet_documents_total", kDocumentsHelp,
                             obs::LabelPair("mode", "prior_only"));
    m->degraded_by_rung[0] = nullptr;
    for (int rung = 1; rung <= 3; ++rung) {
      m->degraded_by_rung[rung] = registry->GetCounter(
          "tenet_degraded_documents_total", kDegradedHelp,
          obs::LabelPair("rung", std::string(1, static_cast<char>('0' + rung))));
    }
    m->cover_retries = registry->GetCounter(
        "tenet_cover_retries_total",
        "Tree-cover bound-doubling retry attempts (the paper's failure "
        "warning B < B*).");
    return m;
  }();
  return *metrics;
}

// Measures one pipeline stage and records it everywhere at once: the same
// number lands in the PipelineTimings field (Figure 7 compatibility), the
// per-stage latency histogram, and — when the request carries a trace —
// the stage's span.  One measurement, three sinks, no drift.
class StageScope {
 public:
  StageScope(const LinkContext& context, const char* name,
             obs::Histogram* histogram)
      : trace_(context.trace),
        histogram_(histogram),
        span_(trace_ != nullptr ? trace_->StartSpan(name) : -1) {}

  /// Span id for parenting retry spans; -1 when untraced.
  int span_id() const { return span_; }

  /// Stops the stage and returns the elapsed milliseconds.  Call once.
  double Finish() {
    double ms = timer_.ElapsedMillis();
    histogram_->Observe(ms);
    if (trace_ != nullptr) trace_->EndSpan(span_, ms);
    return ms;
  }

 private:
  obs::Trace* trace_;
  obs::Histogram* histogram_;
  int span_;
  WallTimer timer_;
};

// Records a completed full-pipeline document against the registry.
void RecordFullDocument(const PipelineTimings& timings) {
  const PipelineMetrics& m = Metrics();
  m.documents_full->Increment();
  m.latency_full->Observe(timings.TotalMs());
}

// Shared assembly of the prior-only fallback: per mention group, keep the
// canopy whose mentions are collectively most confident under the priors
// (the degraded stand-in for coherence-driven canopy resolution), then link
// every mention of the winning canopy to its top-prior candidate.  Mentions
// without candidates are reported isolated, exactly like the full path.
// `top(mention_id)` yields the best candidate or nullopt.
template <typename TopFn>
LinkingResult AssemblePriorOnly(const MentionSet& universe, TopFn&& top) {
  LinkingResult result;
  for (int g = 0; g < universe.num_groups(); ++g) {
    const MentionGroup& group = universe.groups[g];
    int winning = 0;
    double best_score = -1.0;
    size_t best_size = 0;
    for (size_t k = 0; k < group.canopies.size(); ++k) {
      double score = 0.0;
      for (int m : group.canopies[k].mentions) {
        if (TopCandidate c = top(m)) score += c->second;
      }
      // Equal prior mass over fewer mentions means longer spans — prefer
      // them, mirroring the extractor's maximal-span readings.
      size_t size = group.canopies[k].mentions.size();
      if (score > best_score ||
          (score == best_score && size < best_size)) {
        best_score = score;
        best_size = size;
        winning = static_cast<int>(k);
      }
    }
    const std::vector<int>& reading = group.canopies.empty()
                                          ? group.short_mentions
                                          : group.canopies[winning].mentions;
    for (int m : reading) {
      result.selected_mentions.push_back(m);
      TopCandidate c = top(m);
      if (!c.has_value()) {
        result.isolated_mentions.push_back(m);
        continue;
      }
      LinkedConcept link;
      link.mention_id = m;
      link.surface = universe.mention(m).surface;
      link.kind = universe.mention(m).kind;
      link.concept_ref = c->first;
      link.prior = c->second;
      result.links.push_back(std::move(link));
    }
  }
  std::sort(result.links.begin(), result.links.end(),
            [](const LinkedConcept& a, const LinkedConcept& b) {
              return a.mention_id < b.mention_id;
            });
  std::sort(result.selected_mentions.begin(), result.selected_mentions.end());
  std::sort(result.isolated_mentions.begin(), result.isolated_mentions.end());
  return result;
}

}  // namespace

std::string_view DegradationModeToString(DegradationInfo::Mode mode) {
  switch (mode) {
    case DegradationInfo::Mode::kFull:
      return "full";
    case DegradationInfo::Mode::kPriorOnly:
      return "prior_only";
  }
  return "unknown";
}

namespace {

// The guardrail candidate ceiling clamps the graph's per-mention top-k;
// with the default (generous) limit the graph option wins unchanged.
TenetOptions ClampToLimits(TenetOptions options) {
  if (options.limits.max_candidates_per_mention > 0) {
    options.graph.max_candidates_per_mention =
        std::min(options.graph.max_candidates_per_mention,
                 options.limits.max_candidates_per_mention);
  }
  return options;
}

}  // namespace

TenetPipeline::TenetPipeline(std::shared_ptr<const kb::KbView> view,
                             const text::Gazetteer* gazetteer,
                             TenetOptions options)
    : view_(std::move(view)),
      gazetteer_(gazetteer),
      options_(ClampToLimits(std::move(options))),
      graph_builder_(view_, options_.graph),
      disambiguator_(options_.disambiguator) {
  TENET_CHECK(view_ != nullptr);
  TENET_CHECK(gazetteer != nullptr);
  TENET_CHECK_GT(options_.bound_factor, 0.0);
  TENET_CHECK_GE(options_.bound_retry.max_retries, 0);
  TENET_CHECK_GE(options_.bound_retry.multiplier, 1.0);
}

TenetPipeline::TenetPipeline(const kb::KnowledgeBase* kb,
                             const embedding::EmbeddingStore* embeddings,
                             const text::Gazetteer* gazetteer,
                             TenetOptions options)
    : TenetPipeline(std::make_shared<kb::FlatKbView>(kb, embeddings),
                    gazetteer, std::move(options)) {}

Deadline TenetPipeline::DefaultDeadline() const {
  return Deadline::AfterMillis(options_.deadline_ms);
}

Result<LinkingResult> TenetPipeline::LinkDocument(
    std::string_view document_text, const LinkContext& context) const {
  // Extraction always runs: even a fully degraded answer needs the mention
  // universe, and the stage is cheap relative to the coherence machinery.
  // The guarded front door enforces TenetOptions::limits — an oversized or
  // (with sanitization disabled) invalid-UTF-8 document is rejected here
  // with kInvalidArgument before any linking work.
  StageScope extract_scope(context, "extract", Metrics().stage_extract);
  text::Extractor extractor(gazetteer_);
  text::TextGuardReport guard_report;
  Result<text::ExtractionResult> extraction =
      extractor.ExtractFromText(document_text, options_.limits,
                                &guard_report);
  PipelineTimings timings;
  timings.extract_ms = extract_scope.Finish();
  if (!extraction.ok()) return extraction.status();
  if (guard_report.truncated() && context.trace != nullptr) {
    std::string what;
    auto add = [&what](const char* name, int64_t n) {
      if (n <= 0) return;
      if (!what.empty()) what += ',';
      what += name;
      what += '=';
      what += std::to_string(n);
    };
    add("invalid_utf8_bytes",
        static_cast<int64_t>(guard_report.invalid_utf8_bytes));
    add("truncated_tokens", guard_report.truncated_tokens);
    add("token_cap_hit", guard_report.token_cap_hit ? 1 : 0);
    add("dropped_mentions", guard_report.dropped_mentions);
    add("dropped_relations", guard_report.dropped_relations);
    context.trace->Annotate("input_truncated", what);
  }

  MentionSet mentions =
      BuildMentionSet(extraction.value(), gazetteer_, options_.canopy);
  return LinkMentionSetWithTimings(std::move(mentions), context, timings);
}

Result<LinkingResult> TenetPipeline::LinkExtraction(
    const text::ExtractionResult& extraction,
    const LinkContext& context) const {
  MentionSet mentions =
      BuildMentionSet(extraction, gazetteer_, options_.canopy);
  return LinkMentionSetWithTimings(std::move(mentions), context, {});
}

Result<LinkingResult> TenetPipeline::LinkMentionSet(
    MentionSet mentions, const LinkContext& context) const {
  return LinkMentionSetWithTimings(std::move(mentions), context, {});
}

Result<LinkingResult> TenetPipeline::LinkMentionSetWithTimings(
    MentionSet mentions, const LinkContext& context,
    PipelineTimings timings) const {
  Deadline deadline = context.deadline_or(DefaultDeadline());
  LinkingResult result;
  if (mentions.num_mentions() == 0) {
    result.mentions = std::move(mentions);
    result.timings = timings;
    RecordFullDocument(timings);
    return result;
  }

  // ---- Rung 0: budget gone before the coherence stage --------------------
  if (deadline.expired()) {
    if (!options_.degrade_to_prior) {
      return Status::DeadlineExceeded(
          "deadline expired before the coherence stage");
    }
    return PriorOnlyFromMentions(std::move(mentions),
                                 "deadline expired before the coherence stage",
                                 /*stages_degraded=*/3, timings, context);
  }

  StageScope graph_scope(context, "graph", Metrics().stage_graph);
  CoherenceGraph cg = graph_builder_.Build(
      std::move(mentions),
      context.similarity_cache != nullptr
          ? context.similarity_cache
          : graph_builder_.options().similarity_cache,
      context.similarity_epoch);
  timings.graph_ms = graph_scope.Finish();

  // ---- Tree cover: B = bound_factor * |M| (Sec. 6.1), growing on the
  // failure warning per the retry policy, under the deadline ---------------
  StageScope cover_scope(context, "cover", Metrics().stage_cover);
  RetrySchedule schedule(options_.bound_retry,
                         options_.bound_factor * cg.num_mentions());
  Result<TreeCover> cover = Status::Internal("unsolved");
  TreeCoverStats cover_stats;
  Status interrupted;  // non-OK when the deadline cut the search short
  int attempt = 0;
  do {
    if (deadline.expired()) {
      interrupted = Status::DeadlineExceeded(
          "deadline expired during the tree-cover search");
      break;
    }
    // Every attempt after the first is a bound-doubling retry: counted,
    // and traced as a child span of the cover stage.
    int retry_span = -1;
    if (attempt > 0) {
      Metrics().cover_retries->Increment();
      if (context.trace != nullptr) {
        retry_span =
            context.trace->StartSpan("cover_retry", cover_scope.span_id());
      }
    }
    cover = solver_.Solve(cg, schedule.value(), &cover_stats);
    if (retry_span >= 0) context.trace->EndSpan(retry_span);
    ++attempt;
    if (cover.ok() || !cover.status().IsBoundTooSmall()) break;
  } while (schedule.Next());
  timings.cover_ms = cover_scope.Finish();

  // ---- Rung 1: cover unavailable (deadline, retry exhaustion, or solver
  // fault) -> serve priors from the already-built graph --------------------
  if (!interrupted.ok() || !cover.ok()) {
    Status cause = !interrupted.ok() ? interrupted : cover.status();
    if (!options_.degrade_to_prior) return cause;
    return PriorOnlyFromGraph(cg, cause.ToString(), /*stages_degraded=*/2,
                              timings, context);
  }

  // ---- Rung 2: cover done but budget gone -> degrade the last stage ------
  if (deadline.expired()) {
    if (!options_.degrade_to_prior) {
      return Status::DeadlineExceeded(
          "deadline expired before disambiguation");
    }
    return PriorOnlyFromGraph(cg, "deadline expired before disambiguation",
                              /*stages_degraded=*/1, timings, context);
  }

  result.used_bound = schedule.value();
  result.cover_stats = cover_stats;

  StageScope disambiguate_scope(context, "disambiguate",
                                Metrics().stage_disambiguate);
  DisambiguationResult gamma = disambiguator_.Run(cg, cover.value());
  timings.disambiguate_ms = disambiguate_scope.Finish();

  // ---- Assemble the output -------------------------------------------------
  const MentionSet& universe = cg.mentions();
  for (const auto& [mention_id, node] : gamma.selected_node) {
    const CoherenceGraph::ConceptNode& cn = cg.concept_node(node);
    LinkedConcept link;
    link.mention_id = mention_id;
    link.surface = universe.mention(mention_id).surface;
    link.kind = universe.mention(mention_id).kind;
    link.concept_ref = cn.ref;
    link.prior = cn.prior;
    result.links.push_back(std::move(link));
    result.selected_mentions.push_back(mention_id);
  }
  std::sort(result.links.begin(), result.links.end(),
            [](const LinkedConcept& a, const LinkedConcept& b) {
              return a.mention_id < b.mention_id;
            });

  // Isolated / emerging concepts: unlinked members of a resolved group's
  // winning canopy (e.g. the non-linkable "April" next to "Brooklyn"), and
  // the default all-short segmentation of groups that never resolved.
  for (int g = 0; g < universe.num_groups(); ++g) {
    const std::vector<int>& selected_reading =
        gamma.group_resolved[g]
            ? universe.groups[g].canopies[gamma.winning_canopy[g]].mentions
            : universe.groups[g].short_mentions;
    for (int mention_id : selected_reading) {
      if (!gamma.IsLinked(mention_id)) {
        result.isolated_mentions.push_back(mention_id);
        result.selected_mentions.push_back(mention_id);
      }
    }
  }
  std::sort(result.selected_mentions.begin(),
            result.selected_mentions.end());
  std::sort(result.isolated_mentions.begin(),
            result.isolated_mentions.end());

  result.mentions = cg.mentions();  // copy out the universe
  result.timings = timings;
  RecordFullDocument(timings);
  return result;
}

void TenetPipeline::FinishPriorOnly(std::string reason, int stages_degraded,
                                    PipelineTimings timings,
                                    const LinkContext& context,
                                    LinkingResult* result) const {
  result->timings = timings;
  result->degradation.mode = DegradationInfo::Mode::kPriorOnly;
  result->degradation.stages_degraded = stages_degraded;

  const PipelineMetrics& m = Metrics();
  // The fallback assembly is the document's (degraded) disambiguation
  // stage: its latency belongs to the same per-stage family the full path
  // feeds, so stage sums stay equal to summed PipelineTimings either way.
  m.stage_disambiguate->Observe(timings.disambiguate_ms);
  m.documents_prior_only->Increment();
  m.latency_prior_only->Observe(timings.TotalMs());
  if (stages_degraded >= 1 && stages_degraded <= 3) {
    m.degraded_by_rung[stages_degraded]->Increment();
  }

  if (context.trace != nullptr) {
    int span = context.trace->StartSpan("prior_only");
    context.trace->EndSpan(span, timings.disambiguate_ms);
    context.trace->Annotate("degraded_mode", "prior_only");
    context.trace->Annotate("degraded_reason", reason);
    context.trace->Annotate("stages_degraded",
                            std::string(1, static_cast<char>(
                                               '0' + stages_degraded)));
  }
  result->degradation.reason = std::move(reason);
}

Result<LinkingResult> TenetPipeline::PriorOnlyFromMentions(
    MentionSet mentions, std::string reason, int stages_degraded,
    PipelineTimings timings, const LinkContext& context) const {
  WallTimer timer;
  const MentionSet& universe = mentions;
  // Same candidate budget as the coherence graph, so the degraded path sees
  // the identical renormalized top-k prior distribution per mention.
  const int top_k = options_.graph.max_candidates_per_mention;
  int64_t candidate_overflow = 0;
  auto top = [this, &universe, top_k,
              &candidate_overflow](int m) -> TopCandidate {
    const Mention& mention = universe.mention(m);
    int overflow = 0;
    if (mention.is_noun()) {
      std::vector<kb::EntityCandidate> candidates = view_->CandidateEntities(
          mention.surface, mention.type, top_k, &overflow);
      candidate_overflow += overflow;
      if (candidates.empty()) return std::nullopt;
      return std::make_pair(kb::ConceptRef::Entity(candidates.front().entity),
                            candidates.front().prior);
    }
    std::vector<kb::PredicateCandidate> candidates =
        view_->CandidatePredicates(mention.surface, top_k, &overflow);
    candidate_overflow += overflow;
    if (candidates.empty()) return std::nullopt;
    return std::make_pair(
        kb::ConceptRef::Predicate(candidates.front().predicate),
        candidates.front().prior);
  };
  LinkingResult result = AssemblePriorOnly(universe, top);
  text::RecordInputTruncated(text::InputTruncateReason::kCandidates,
                             candidate_overflow);
  result.mentions = std::move(mentions);
  timings.disambiguate_ms = timer.ElapsedMillis();
  FinishPriorOnly(std::move(reason), stages_degraded, timings, context,
                  &result);
  return result;
}

Result<LinkingResult> TenetPipeline::PriorOnlyFromGraph(
    const CoherenceGraph& cg, std::string reason, int stages_degraded,
    PipelineTimings timings, const LinkContext& context) const {
  WallTimer timer;
  auto top = [&cg](int m) -> TopCandidate {
    const std::vector<int>& nodes = cg.ConceptNodesOfMention(m);
    const CoherenceGraph::ConceptNode* best = nullptr;
    for (int node : nodes) {
      const CoherenceGraph::ConceptNode& cn = cg.concept_node(node);
      if (best == nullptr || cn.prior > best->prior) best = &cn;
    }
    if (best == nullptr) return std::nullopt;
    return std::make_pair(best->ref, best->prior);
  };
  LinkingResult result = AssemblePriorOnly(cg.mentions(), top);
  result.mentions = cg.mentions();  // copy out the universe
  timings.disambiguate_ms = timer.ElapsedMillis();
  FinishPriorOnly(std::move(reason), stages_degraded, timings, context,
                  &result);
  return result;
}

}  // namespace core
}  // namespace tenet
