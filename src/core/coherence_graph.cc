#include "core/coherence_graph.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"

namespace tenet {
namespace core {

int CoherenceGraph::MentionOfNode(int node) const {
  TENET_CHECK(node >= 0 && node < num_nodes());
  if (node < num_mentions()) return node;
  return concept_nodes_[node - num_mentions()].mention;
}

const CoherenceGraph::ConceptNode& CoherenceGraph::concept_node(
    int node) const {
  TENET_CHECK(node >= num_mentions() && node < num_nodes());
  return concept_nodes_[node - num_mentions()];
}

const std::vector<int>& CoherenceGraph::ConceptNodesOfMention(
    int mention) const {
  TENET_CHECK(mention >= 0 && mention < num_mentions());
  return concepts_of_mention_[mention];
}

CoherenceGraphBuilder::CoherenceGraphBuilder(
    const kb::KnowledgeBase* kb, const embedding::EmbeddingStore* embeddings,
    CoherenceGraphOptions options)
    : kb_(kb), embeddings_(embeddings), options_(options) {
  TENET_CHECK(kb != nullptr);
  TENET_CHECK(embeddings != nullptr);
  TENET_CHECK(kb->finalized());
  TENET_CHECK(embeddings->finalized());
  TENET_CHECK_GT(options_.max_candidates_per_mention, 0);
}

CoherenceGraph CoherenceGraphBuilder::Build(MentionSet mentions) const {
  // Pass 1: candidate generation, to size the node space.
  const int num_mentions = mentions.num_mentions();
  std::vector<CoherenceGraph::ConceptNode> concept_nodes;
  std::vector<std::vector<int>> of_mention(num_mentions);
  for (int m = 0; m < num_mentions; ++m) {
    const Mention& mention = mentions.mention(m);
    if (mention.is_noun()) {
      for (const kb::EntityCandidate& c : kb_->CandidateEntities(
               mention.surface, mention.type,
               options_.max_candidates_per_mention)) {
        of_mention[m].push_back(static_cast<int>(concept_nodes.size()));
        concept_nodes.push_back(CoherenceGraph::ConceptNode{
            m, kb::ConceptRef::Entity(c.entity), c.prior});
      }
    } else {
      for (const kb::PredicateCandidate& c : kb_->CandidatePredicates(
               mention.surface, options_.max_candidates_per_mention)) {
        of_mention[m].push_back(static_cast<int>(concept_nodes.size()));
        concept_nodes.push_back(CoherenceGraph::ConceptNode{
            m, kb::ConceptRef::Predicate(c.predicate), c.prior});
      }
    }
  }

  CoherenceGraph cg(std::move(mentions),
                    static_cast<int>(concept_nodes.size()));
  cg.concept_nodes_ = std::move(concept_nodes);
  for (int m = 0; m < num_mentions; ++m) {
    for (int local : of_mention[m]) {
      cg.concepts_of_mention_[m].push_back(num_mentions + local);
    }
  }

  // Mention -> candidate edges (local semantic distance, Eqs. 1-2).
  for (int m = 0; m < num_mentions; ++m) {
    for (int node : cg.concepts_of_mention_[m]) {
      double prior = cg.concept_node(node).prior;
      cg.graph_.AddEdge(m, node, 1.0 - prior);
    }
  }

  // Concept x concept edges (global semantic distance, Eqs. 3-5).  The
  // weights are independent of each other, so they can be computed by a
  // small thread pool (Sec. 6.2); edges are then inserted serially.
  const int num_concepts = cg.num_concept_nodes();
  struct PendingEdge {
    int u;
    int v;
    double weight;
  };
  auto compute_range = [&](int begin, int end, std::vector<PendingEdge>& out) {
    for (int i = begin; i < end; ++i) {
      const CoherenceGraph::ConceptNode& a = cg.concept_nodes_[i];
      const Mention& mention_a = cg.mentions_.mention(a.mention);
      for (int j = i + 1; j < num_concepts; ++j) {
        const CoherenceGraph::ConceptNode& b = cg.concept_nodes_[j];
        if (a.mention == b.mention) continue;
        const Mention& mention_b = cg.mentions_.mention(b.mention);
        bool connect = false;
        if (a.ref.is_entity() && b.ref.is_entity()) {
          connect = true;  // entity pairs always compared (Eq. 3)
        } else {
          // Predicate-predicate and entity-predicate edges require the
          // phrases to share a sentence (Eqs. 4-5).
          connect = mention_a.SharesSentence(mention_b);
        }
        if (!connect) continue;
        double distance = 1.0 - embeddings_->Cosine(a.ref, b.ref);
        out.push_back(PendingEdge{num_mentions + i, num_mentions + j,
                                  distance});
      }
    }
  };

  std::vector<PendingEdge> edges;
  const int num_threads = options_.num_threads;
  if (num_threads <= 1 || num_concepts < 64) {
    compute_range(0, num_concepts, edges);
  } else {
    std::vector<std::vector<PendingEdge>> partial(num_threads);
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    // Interleaved striping would balance better, but contiguous chunks keep
    // the output deterministic and the loads are tiny either way.
    int chunk = (num_concepts + num_threads - 1) / num_threads;
    for (int t = 0; t < num_threads; ++t) {
      int begin = t * chunk;
      int end = std::min(num_concepts, begin + chunk);
      if (begin >= end) break;
      workers.emplace_back(compute_range, begin, end, std::ref(partial[t]));
    }
    for (std::thread& w : workers) w.join();
    for (std::vector<PendingEdge>& p : partial) {
      edges.insert(edges.end(), p.begin(), p.end());
    }
  }
  for (const PendingEdge& e : edges) {
    cg.graph_.AddEdge(e.u, e.v, e.weight);
  }
  return cg;
}

}  // namespace core
}  // namespace tenet
