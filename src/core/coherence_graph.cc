#include "core/coherence_graph.h"

#include <algorithm>
#include <latch>
#include <utility>

#include "common/logging.h"
#include "embedding/dot_kernel.h"
#include "text/limits.h"

namespace tenet {
namespace core {
namespace {

// Column-tile width of the triangular sweep: 128 unit rows of a typical
// 64-128 dim embedding are 64-128 KB, sized to stay resident in L2
// while every row of a task strip revisits the tile.
constexpr int kTileCols = 128;

// Below this many concept nodes the pair count is too small for task
// submission to pay for itself; build serially.
constexpr int kMinConceptsForParallel = 64;

struct PendingEdge {
  int u;
  int v;
  double weight;
};

}  // namespace

int CoherenceGraph::MentionOfNode(int node) const {
  TENET_CHECK(node >= 0 && node < num_nodes());
  if (node < num_mentions()) return node;
  return concept_nodes_[node - num_mentions()].mention;
}

const CoherenceGraph::ConceptNode& CoherenceGraph::concept_node(
    int node) const {
  TENET_CHECK(node >= num_mentions() && node < num_nodes());
  return concept_nodes_[node - num_mentions()];
}

const std::vector<int>& CoherenceGraph::ConceptNodesOfMention(
    int mention) const {
  TENET_CHECK(mention >= 0 && mention < num_mentions());
  return concepts_of_mention_[mention];
}

CoherenceGraphBuilder::CoherenceGraphBuilder(
    std::shared_ptr<const kb::KbView> view, CoherenceGraphOptions options)
    : view_(std::move(view)), options_(options) {
  TENET_CHECK(view_ != nullptr);
  TENET_CHECK_GT(options_.max_candidates_per_mention, 0);
  TENET_CHECK_GE(options_.num_threads, 0);
}

CoherenceGraphBuilder::CoherenceGraphBuilder(
    const kb::KnowledgeBase* kb, const embedding::EmbeddingStore* embeddings,
    CoherenceGraphOptions options)
    : CoherenceGraphBuilder(std::make_shared<kb::FlatKbView>(kb, embeddings),
                            options) {}

CoherenceGraph CoherenceGraphBuilder::Build(MentionSet mentions) const {
  return Build(std::move(mentions), options_.similarity_cache);
}

CoherenceGraph CoherenceGraphBuilder::Build(
    MentionSet mentions, embedding::SimilarityCache* cache,
    uint64_t cache_epoch) const {
  // Pass 1: candidate generation, to size the node space.  Postings past
  // the per-mention cap are counted (hostile surfaces with hundreds of
  // candidates are exactly what the cap is for) but never fetched, so the
  // returned top-k and its renormalized priors are unchanged.
  const int num_mentions = mentions.num_mentions();
  std::vector<CoherenceGraph::ConceptNode> concept_nodes;
  std::vector<std::vector<int>> of_mention(num_mentions);
  int64_t candidate_overflow = 0;
  for (int m = 0; m < num_mentions; ++m) {
    const Mention& mention = mentions.mention(m);
    int overflow = 0;
    if (mention.is_noun()) {
      for (const kb::EntityCandidate& c : view_->CandidateEntities(
               mention.surface, mention.type,
               options_.max_candidates_per_mention, &overflow)) {
        of_mention[m].push_back(static_cast<int>(concept_nodes.size()));
        concept_nodes.push_back(CoherenceGraph::ConceptNode{
            m, kb::ConceptRef::Entity(c.entity), c.prior});
      }
    } else {
      for (const kb::PredicateCandidate& c : view_->CandidatePredicates(
               mention.surface, options_.max_candidates_per_mention,
               &overflow)) {
        of_mention[m].push_back(static_cast<int>(concept_nodes.size()));
        concept_nodes.push_back(CoherenceGraph::ConceptNode{
            m, kb::ConceptRef::Predicate(c.predicate), c.prior});
      }
    }
    candidate_overflow += overflow;
  }
  text::RecordInputTruncated(text::InputTruncateReason::kCandidates,
                             candidate_overflow);

  CoherenceGraph cg(std::move(mentions),
                    static_cast<int>(concept_nodes.size()));
  cg.concept_nodes_ = std::move(concept_nodes);
  for (int m = 0; m < num_mentions; ++m) {
    for (int local : of_mention[m]) {
      cg.concepts_of_mention_[m].push_back(num_mentions + local);
    }
  }

  // Mention -> candidate edges (local semantic distance, Eqs. 1-2).
  for (int m = 0; m < num_mentions; ++m) {
    for (int node : cg.concepts_of_mention_[m]) {
      double prior = cg.concept_node(node).prior;
      cg.graph_.AddEdge(m, node, 1.0 - prior);
    }
  }

  // Concept x concept edges (global semantic distance, Eqs. 3-5).
  const int num_concepts = cg.num_concept_nodes();
  if (num_concepts == 0) return cg;

  // Whether the pair (i, j) gets an edge at all: entity pairs always
  // (Eq. 3); predicate-predicate and entity-predicate edges require the
  // phrases to share a sentence (Eqs. 4-5).
  auto connected = [&](const CoherenceGraph::ConceptNode& a,
                       const CoherenceGraph::ConceptNode& b) {
    if (a.mention == b.mention) return false;
    if (a.ref.is_entity() && b.ref.is_entity()) return true;
    return cg.mentions_.mention(a.mention)
        .SharesSentence(cg.mentions_.mention(b.mention));
  };

  std::vector<PendingEdge> edges;

  if (!options_.use_gather_kernel) {
    // Legacy scalar path: one Cosine call — one dependency operation, one
    // fault probe — per connected pair.  Serial; the equivalence baseline.
    for (int i = 0; i < num_concepts; ++i) {
      const CoherenceGraph::ConceptNode& a = cg.concept_nodes_[i];
      for (int j = i + 1; j < num_concepts; ++j) {
        const CoherenceGraph::ConceptNode& b = cg.concept_nodes_[j];
        if (!connected(a, b)) continue;
        edges.push_back(PendingEdge{num_mentions + i, num_mentions + j,
                                    1.0 - view_->Cosine(a.ref, b.ref)});
      }
    }
  } else {
    // Batched kernel: one gather of every candidate's unit row into a
    // contiguous row-major scratch (a single dependency operation for the
    // whole document), then a tiled triangular sweep.
    const int dim = view_->dimension();
    std::vector<kb::ConceptRef> refs(num_concepts);
    for (int i = 0; i < num_concepts; ++i) refs[i] = cg.concept_nodes_[i].ref;
    std::vector<double> rows(static_cast<size_t>(num_concepts) * dim);
    view_->GatherUnit(refs, rows.data());

    // The similarity of pair (i, j), via the cache when one is installed.
    // Cached and computed values are bit-identical: both are the DotUnit
    // reduction over the store's unit rows (the scratch holds verbatim
    // copies), so a warm cache never changes an edge weight.
    auto pair_cosine = [&](int i, int j) {
      const double* ri = rows.data() + static_cast<size_t>(i) * dim;
      const double* rj = rows.data() + static_cast<size_t>(j) * dim;
      if (cache != nullptr) {
        return cache->GetOrCompute(
            refs[i], refs[j],
            [&] {
              return embedding::ClampCosine(embedding::DotUnit(ri, rj, dim));
            },
            cache_epoch);
      }
      return embedding::ClampCosine(embedding::DotUnit(ri, rj, dim));
    };

    // One task: the triangular strip of rows [begin, end), column-tiled so
    // a block of rows stays hot while the whole strip revisits it.  Edges
    // land in per-row buckets and are flushed in row order, so the output
    // sequence is lexicographic in (i, j) whatever the tile width.
    auto compute_strip = [&](int begin, int end,
                             std::vector<PendingEdge>& out) {
      std::vector<std::vector<PendingEdge>> per_row(end - begin);
      for (int jb = begin + 1; jb < num_concepts; jb += kTileCols) {
        const int je = std::min(num_concepts, jb + kTileCols);
        const int i_hi = std::min(end, je - 1);
        for (int i = begin; i < i_hi; ++i) {
          const CoherenceGraph::ConceptNode& a = cg.concept_nodes_[i];
          std::vector<PendingEdge>& bucket = per_row[i - begin];
          for (int j = std::max(i + 1, jb); j < je; ++j) {
            const CoherenceGraph::ConceptNode& b = cg.concept_nodes_[j];
            if (!connected(a, b)) continue;
            bucket.push_back(PendingEdge{num_mentions + i, num_mentions + j,
                                         1.0 - pair_cosine(i, j)});
          }
        }
      }
      size_t total = 0;
      for (const std::vector<PendingEdge>& bucket : per_row) {
        total += bucket.size();
      }
      out.reserve(out.size() + total);
      for (const std::vector<PendingEdge>& bucket : per_row) {
        out.insert(out.end(), bucket.begin(), bucket.end());
      }
    };

    int num_tasks = 1;
    if (options_.pool != nullptr && num_concepts >= kMinConceptsForParallel) {
      num_tasks = options_.num_threads > 0 ? options_.num_threads
                                           : options_.pool->num_threads();
      num_tasks = std::clamp(num_tasks, 1, num_concepts);
    }

    if (num_tasks <= 1) {
      compute_strip(0, num_concepts, edges);
    } else {
      // Pair-count-balanced deterministic partition: row i owns C - i - 1
      // pairs, so contiguous equal-row chunks would give the first task
      // nearly all the work.  Sweep rows, closing a strip whenever it has
      // accumulated its share of the triangle.
      const int64_t total_pairs =
          static_cast<int64_t>(num_concepts) * (num_concepts - 1) / 2;
      const int64_t target = (total_pairs + num_tasks - 1) / num_tasks;
      std::vector<std::pair<int, int>> strips;
      int begin = 0;
      int64_t acc = 0;
      for (int i = 0; i < num_concepts; ++i) {
        acc += num_concepts - i - 1;
        if (acc >= target || i == num_concepts - 1) {
          strips.emplace_back(begin, i + 1);
          begin = i + 1;
          acc = 0;
        }
      }

      std::vector<std::vector<PendingEdge>> partial(strips.size());
      std::latch done(static_cast<ptrdiff_t>(strips.size()));
      for (size_t t = 0; t < strips.size(); ++t) {
        auto task = [&, t] {
          compute_strip(strips[t].first, strips[t].second, partial[t]);
          done.count_down();
        };
        // A pool that stopped accepting work (shutdown race) degrades to
        // inline execution; the build must still complete.
        if (!options_.pool->Submit(task).ok()) task();
      }
      done.wait();
      for (std::vector<PendingEdge>& p : partial) {
        edges.insert(edges.end(), p.begin(), p.end());
      }
    }
  }

  for (const PendingEdge& e : edges) {
    cg.graph_.AddEdge(e.u, e.v, e.weight);
  }
  return cg;
}

}  // namespace core
}  // namespace tenet
