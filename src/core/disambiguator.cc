#include "core/disambiguator.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace tenet {
namespace core {

DisambiguationResult Disambiguator::Run(const CoherenceGraph& cg,
                                        const TreeCover& cover) const {
  const MentionSet& mentions = cg.mentions();
  DisambiguationResult result;
  result.group_resolved.assign(mentions.num_groups(), false);
  result.winning_canopy.assign(mentions.num_groups(), -1);

  // A canopy normally completes when every member has a recorded concept.
  // A member with no KB candidates never receives one, which would
  // deadlock its canopies; so when a group has NO fully-linkable canopy,
  // canopies are allowed to complete over their linkable subset (e.g.
  // "Brooklyn in April": "April" is non-linkable but "Brooklyn" must still
  // be linked).  When some canopy IS fully linkable (e.g. the merged
  // "Fellow of the AAAS"), the strict rule stands, so partially-linkable
  // readings cannot pre-empt it.  Unlinked members of the winning canopy
  // are reported as isolated concepts by the pipeline.
  auto linkable = [&cg](int mention) {
    return !cg.ConceptNodesOfMention(mention).empty();
  };
  std::vector<bool> group_has_fully_linkable(mentions.num_groups(), false);
  for (int g = 0; g < mentions.num_groups(); ++g) {
    for (const Canopy& canopy : mentions.groups[g].canopies) {
      bool all = true;
      for (int member : canopy.mentions) {
        if (!linkable(member)) {
          all = false;
          break;
        }
      }
      if (all) {
        group_has_fully_linkable[g] = true;
        break;
      }
    }
  }

  // ---- Collect the distinct edges of the tree cover, sorted ascending ----
  struct CoverEdge {
    int u;
    int v;
    double weight;
    int informativeness;  // tie-break: token length of the touched mentions
  };
  auto mention_tokens = [&mentions, &cg](int node) {
    const std::string& surface =
        mentions.mention(cg.MentionOfNode(node)).surface;
    return 1 + static_cast<int>(
                   std::count(surface.begin(), surface.end(), ' '));
  };
  std::vector<CoverEdge> edges;
  {
    std::unordered_set<uint64_t> seen;
    for (const CoverTree& tree : cover.trees) {
      for (const graph::Edge& e : tree.edges) {
        uint64_t lo = static_cast<uint64_t>(std::min(e.u, e.v));
        uint64_t hi = static_cast<uint64_t>(std::max(e.u, e.v));
        if (seen.insert((hi << 32) | lo).second) {
          edges.push_back(CoverEdge{e.u, e.v, e.weight,
                                    mention_tokens(e.u) +
                                        mention_tokens(e.v)});
        }
      }
    }
  }
  // Ascending semantic distance; among equally confident edges the more
  // informative (longer) mentions win, so an unambiguous long-text variant
  // ("Fellow of the AAAS") pre-empts its equally unambiguous fragments —
  // the preference Sec. 1 motivates.
  auto edge_order = [this](const CoverEdge& a, const CoverEdge& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    if (options_.informative_tie_break &&
        a.informativeness != b.informativeness) {
      return a.informativeness > b.informativeness;
    }
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  };
  if (options_.global_kruskal_order) {
    std::sort(edges.begin(), edges.end(), edge_order);
  } else {
    // Ablation: sweep each tree separately (sorted within), in mention
    // order.  Sec. 5.2 argues this biases results by processing order.
    std::vector<CoverEdge> sequential;
    sequential.reserve(edges.size());
    std::unordered_set<uint64_t> appended;
    for (const CoverTree& tree : cover.trees) {
      std::vector<CoverEdge> tree_edges;
      for (const graph::Edge& e : tree.edges) {
        tree_edges.push_back(CoverEdge{e.u, e.v, e.weight,
                                       mention_tokens(e.u) +
                                           mention_tokens(e.v)});
      }
      std::sort(tree_edges.begin(), tree_edges.end(), edge_order);
      for (const CoverEdge& e : tree_edges) {
        uint64_t lo = static_cast<uint64_t>(std::min(e.u, e.v));
        uint64_t hi = static_cast<uint64_t>(std::max(e.u, e.v));
        if (appended.insert((hi << 32) | lo).second) {
          sequential.push_back(e);
        }
      }
    }
    edges = std::move(sequential);
  }

  // ---- Canopy bookkeeping (the mapping M of Algorithm 5) -----------------
  // recorded[g][k]: mention -> concept node recorded for canopy k of group
  // g; the first (lightest-edge) recording per mention wins.
  std::vector<std::vector<std::unordered_map<int, int>>> recorded(
      mentions.num_groups());
  for (int g = 0; g < mentions.num_groups(); ++g) {
    recorded[g].resize(mentions.groups[g].canopies.size());
  }

  std::unordered_set<int> selected_nodes;  // Gamma.values()
  int unresolved_groups = mentions.num_groups();

  auto process_pair = [&](int mention, int concept_node) {
    const int g = mentions.mention(mention).group;
    if (result.group_resolved[g]) return;  // pruning strategy 3
    const MentionGroup& group = mentions.groups[g];
    for (size_t k = 0; k < group.canopies.size(); ++k) {
      const Canopy& canopy = group.canopies[k];
      bool contains = std::find(canopy.mentions.begin(),
                                canopy.mentions.end(),
                                mention) != canopy.mentions.end();
      if (!contains) continue;
      std::unordered_map<int, int>& slot = recorded[g][k];
      slot.emplace(mention, concept_node);  // first recording wins
      size_t required;
      if (group_has_fully_linkable[g]) {
        required = canopy.mentions.size();  // strict completion
      } else {
        required = 0;
        for (int member : canopy.mentions) {
          if (linkable(member)) ++required;
        }
      }
      if (required > 0 && slot.size() == required) {
        // Canopy complete: commit to Gamma and resolve the group.
        for (const auto& [m, node] : slot) {
          result.selected_node.emplace(m, node);
          selected_nodes.insert(node);
        }
        result.group_resolved[g] = true;
        result.winning_canopy[g] = static_cast<int>(k);
        --unresolved_groups;
        return;
      }
    }
  };

  // ---- Kruskal-style sweep ------------------------------------------------
  for (const CoverEdge& edge : edges) {
    if (options_.early_termination && unresolved_groups == 0) {
      break;  // pruning strategy 4
    }

    const bool u_is_mention = cg.IsMentionNode(edge.u);
    const bool v_is_mention = cg.IsMentionNode(edge.v);
    if (u_is_mention || v_is_mention) {
      // Mention-candidate edge.
      int mention = u_is_mention ? edge.u : edge.v;
      int concept_node = u_is_mention ? edge.v : edge.u;
      if (result.IsLinked(mention)) continue;  // pruning strategy 1
      process_pair(mention, concept_node);
      continue;
    }

    // Concept-concept edge.
    const int mention_u = cg.MentionOfNode(edge.u);
    const int mention_v = cg.MentionOfNode(edge.v);
    const bool u_linked = result.IsLinked(mention_u);
    const bool v_linked = result.IsLinked(mention_v);
    if (!u_linked && !v_linked) {
      process_pair(mention_u, edge.u);
      process_pair(mention_v, edge.v);
    } else if (selected_nodes.count(edge.u) > 0 && !v_linked) {
      // The chosen concept u vouches for its neighbor v.
      process_pair(mention_v, edge.v);
    } else if (selected_nodes.count(edge.v) > 0 && !u_linked) {
      process_pair(mention_u, edge.u);
    }
    // Otherwise: a linked mention's non-selected candidate, or both linked
    // already — discard (pruning strategy 2).
  }
  return result;
}

}  // namespace core
}  // namespace tenet
