#ifndef TENET_CORE_TREE_COVER_H_
#define TENET_CORE_TREE_COVER_H_

#include <vector>

#include "common/result.h"
#include "core/coherence_graph.h"
#include "graph/graph.h"

namespace tenet {
namespace core {

// One tree T_i of an M-rooted coherence tree cover.  After the matching
// step a "tree" is the union of the leftover tree, an assigned subtree and
// the shortest path connecting them, so it is represented as a connected
// edge set rather than a strict tree (trees of a cover may share nodes and
// edges across — and after path-merging, within — each other; Def. 6).
struct CoverTree {
  /// The root mention node id (== mention id) in the coherence graph.
  int root = -1;
  /// Distinct edges of this tree (coherence-graph node ids).
  std::vector<graph::Edge> edges;
  /// Distinct nodes, root included (root-only for isolated mentions).
  std::vector<int> nodes;
  /// Sum of distinct edge weights, omega(T_i).
  double weight = 0.0;
};

// An M-rooted coherence tree cover (Definition 6): one tree per mention.
struct TreeCover {
  std::vector<CoverTree> trees;  // trees[i] is rooted at mention i

  /// The cover cost omega(T) = max_i omega(T_i) (Definition 6).
  double Cost() const;
  /// Total number of (per-tree) edges, the size measure of Figure 7(e).
  int TotalEdges() const;
};

// Solver statistics, reported for the efficiency experiments.
struct TreeCoverStats {
  int pruned_edges = 0;      // edges dropped in step (a)
  int mst_edges = 0;         // MST size in step (c)
  int subtrees = 0;          // carved by step (e)
  int matched_subtrees = 0;  // assigned by step (f)
  int cover_total_edges = 0; // sum of per-tree edges of the final cover
};

// Implements Algorithm 1 (TreeCoverDetermination):
//   (a) prune edges heavier than the bound B;
//   (b) contract all mention nodes into a major root r;
//   (c) Kruskal MST over {r} ∪ C (concept-concept edges included — the
//       paper's running example, Fig. 2; see DESIGN.md faithfulness notes);
//   (d) decompose r back into the mentions, yielding one rooted tree per
//       mention (mentions without concepts become isolated singletons);
//   (e) split each tree into a leftover (<= B) and subtrees in (B, 2B];
//   (f) maximum matching (Hopcroft–Karp) of subtrees to mentions within
//       shortest-path distance <= B, then merge leftover + path + subtree.
//
// Returns kBoundTooSmall (the paper's failure warning) when the pruned
// contracted graph is disconnected or the matching cannot place every
// subtree.  On success the cover cost is at most 4B (Lemma 4.2).
class TreeCoverSolver {
 public:
  TreeCoverSolver() = default;

  Result<TreeCover> Solve(const CoherenceGraph& cg, double bound,
                          TreeCoverStats* stats = nullptr) const;
};

/// Finds the smallest bound (within `tolerance`, relative) for which Solve
/// succeeds, by doubling then bisecting.  Returns the cover found at that
/// bound.  `initial_bound` seeds the search (e.g. |M|).
Result<std::pair<double, TreeCover>> SolveWithMinimalBound(
    const TreeCoverSolver& solver, const CoherenceGraph& cg,
    double initial_bound, double tolerance = 0.01);

}  // namespace core
}  // namespace tenet

#endif  // TENET_CORE_TREE_COVER_H_
