#ifndef TENET_CORE_POPULATION_H_
#define TENET_CORE_POPULATION_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "kb/knowledge_base.h"

namespace tenet {
namespace core {

// Knowledge-base population on top of joint linking — the downstream task
// the paper's introduction motivates (and the home turf of the QKBfly /
// KBPearl baselines): turn linking results into
//   * candidate facts: (subject, predicate, object) triples whose three
//     phrases were linked within one sentence, and
//   * emerging entities: isolated noun phrases proposed for KB insertion.

// One candidate fact harvested from a document.
struct FactCandidate {
  kb::EntityId subject = kb::kInvalidEntity;
  kb::PredicateId predicate = kb::kInvalidPredicate;
  kb::EntityId object = kb::kInvalidEntity;
  /// True when an equivalent fact (either orientation) already exists.
  bool already_known = false;
  /// Number of sentences across the corpus supporting this triple.
  int support = 1;

  friend bool operator==(const FactCandidate& a, const FactCandidate& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object;
  }
};

// One emerging (isolated) entity candidate.
struct EmergingEntity {
  std::string surface;
  /// Documents the surface appeared in as an isolated concept.
  int support = 1;
};

// Accumulated population output over a corpus.
struct PopulationReport {
  std::vector<FactCandidate> facts;       // deduplicated, support-counted
  std::vector<EmergingEntity> entities;   // deduplicated, support-counted

  int NumNewFacts() const {
    int n = 0;
    for (const FactCandidate& f : facts) n += f.already_known ? 0 : 1;
    return n;
  }
};

// Harvests population candidates from linking results.  Stateless per
// document; Accumulate() merges documents into a corpus-level report.
class KbPopulator {
 public:
  /// `kb` must outlive the populator (used for the already-known check).
  explicit KbPopulator(const kb::KnowledgeBase* kb);

  /// Facts extractable from one linking result: for every sentence with a
  /// linked relational phrase and at least two linked noun phrases, the
  /// first two entities (document order) form the triple's arguments.
  std::vector<FactCandidate> HarvestFacts(
      const LinkingResult& result) const;

  /// Isolated noun phrases of one result.
  std::vector<EmergingEntity> HarvestEmergingEntities(
      const LinkingResult& result) const;

  /// Merges one document's harvest into `report`, deduplicating triples
  /// and surfaces and accumulating support counts.
  void Accumulate(const LinkingResult& result, PopulationReport* report) const;

  /// Applies a report to a *new* KB under construction: inserts each
  /// emerging entity (with the given default type) and each new fact whose
  /// support reaches `min_support`.  Returns the number of facts added.
  /// The target ids must match the source KB's (i.e. `target` should be a
  /// clone built from the same data); entity ids for emerging entities are
  /// freshly assigned.
  int ApplyToKb(const PopulationReport& report, int min_support,
                kb::EntityType emerging_type, kb::KnowledgeBase* target) const;

 private:
  bool FactKnown(kb::EntityId subject, kb::PredicateId predicate,
                 kb::EntityId object) const;

  const kb::KnowledgeBase* kb_;
};

}  // namespace core
}  // namespace tenet

#endif  // TENET_CORE_POPULATION_H_
