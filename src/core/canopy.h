#ifndef TENET_CORE_CANOPY_H_
#define TENET_CORE_CANOPY_H_

#include "core/mention.h"
#include "text/extraction.h"
#include "text/gazetteer.h"

namespace tenet {
namespace core {

// Knobs of mention-set construction.
struct CanopyOptions {
  /// Groups with more short mentions than this skip full canopy
  /// enumeration (2^(n-1) segmentations) and keep only the all-short and
  /// all-merged segmentations.  Natural text rarely chains > 4 mentions.
  int max_group_size_for_full_enumeration = 8;
  /// Ablation switch: when false, no long-text variants are generated —
  /// every group keeps only its all-short canopy (a short-only spotter,
  /// like the Falcon/EARL baselines).
  bool enable_long_variants = true;
};

// Builds the mention universe of a document from the extractor's output:
//   * partitions short-text noun mentions into mention groups by the
//     feature links (Algorithm 4, lines 1-9);
//   * enumerates each group's canopies — all contiguous segmentations of
//     its short-mention sequence, materializing long-text variants joined
//     by the connector text (Algorithm 4, CanopyGeneration);
//   * canonicalizes repeated surfaces of singleton groups into one mention
//     (coreference canonicalization, Sec. 6.1);
//   * adds one relational mention per distinct lemma, each its own
//     singleton group.
//
// `gazetteer` types the generated long-text variants; may not be null.
MentionSet BuildMentionSet(const text::ExtractionResult& extraction,
                           const text::Gazetteer* gazetteer,
                           const CanopyOptions& options = {});

/// Number of contiguous segmentations of a sequence of `n` short mentions:
/// 2^(n-1).  Exposed for tests and sizing heuristics.
int64_t NumContiguousSegmentations(int n);

}  // namespace core
}  // namespace tenet

#endif  // TENET_CORE_CANOPY_H_
