#include "core/tree_split.h"

#include <utility>

#include "common/logging.h"

namespace tenet {
namespace core {
namespace {

// Recursive splitter.  Returns the still-attached ("residual") subtree
// below `node` as an oriented edge list together with its weight (<= bound),
// carving subtrees into `out` along the way.
struct Residual {
  std::vector<graph::TreeEdge> edges;
  double weight = 0.0;
};

Residual SplitBelow(const graph::RootedTree& tree, int node, double bound,
                    std::vector<graph::RootedTree>* out) {
  Residual residual;
  for (const auto& [child, edge_weight] : tree.Children(node)) {
    Residual below = SplitBelow(tree, child, bound, out);
    // Everything hanging from `node` through `child`.
    double contribution = below.weight + edge_weight;
    TENET_DCHECK(contribution <= 2.0 * bound);

    if (residual.weight + contribution <= bound) {
      // Still light: keep attached.
      residual.edges.push_back(graph::TreeEdge{node, child, edge_weight});
      residual.edges.insert(residual.edges.end(), below.edges.begin(),
                            below.edges.end());
      residual.weight += contribution;
      continue;
    }
    if (contribution > bound) {
      // The child branch alone is a valid subtree in (bound, 2*bound];
      // carve it and keep the current residual bundle.
      std::vector<graph::TreeEdge> carved = std::move(below.edges);
      carved.push_back(graph::TreeEdge{node, child, edge_weight});
      Result<graph::RootedTree> subtree =
          graph::RootedTree::FromOrientedEdges(node, carved);
      TENET_CHECK(subtree.ok()) << subtree.status();
      out->push_back(std::move(subtree).value());
      continue;
    }
    // residual + contribution in (bound, 2*bound] (since residual <= bound
    // and contribution <= bound): carve the bundle together with this
    // branch as one subtree rooted at `node`.
    std::vector<graph::TreeEdge> carved = std::move(residual.edges);
    carved.push_back(graph::TreeEdge{node, child, edge_weight});
    carved.insert(carved.end(), below.edges.begin(), below.edges.end());
    Result<graph::RootedTree> subtree =
        graph::RootedTree::FromOrientedEdges(node, carved);
    TENET_CHECK(subtree.ok()) << subtree.status();
    out->push_back(std::move(subtree).value());
    residual = Residual{};
  }
  return residual;
}

}  // namespace

Result<SplitResult> SplitTree(const graph::RootedTree& tree, double bound) {
  if (bound <= 0.0) {
    return Status::InvalidArgument("tree splitting bound must be positive");
  }
  for (const graph::TreeEdge& e : tree.edges()) {
    if (e.weight > bound) {
      return Status::InvalidArgument(
          "tree contains an edge heavier than the bound; prune first");
    }
  }
  SplitResult result;
  // Fast path (Algorithm 2 lines 1-2): already light enough.
  if (tree.TotalWeight() <= bound) {
    result.leftover = tree;
    return result;
  }
  Residual residual =
      SplitBelow(tree, tree.root(), bound, &result.subtrees);
  Result<graph::RootedTree> leftover =
      graph::RootedTree::FromOrientedEdges(tree.root(), residual.edges);
  TENET_CHECK(leftover.ok()) << leftover.status();
  result.leftover = std::move(leftover).value();
  return result;
}

}  // namespace core
}  // namespace tenet
